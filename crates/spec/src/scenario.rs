//! Experiment-document extension of the yamlite dialect.
//!
//! A *scenario* is a full experiment description: architecture (a macro
//! preset with overrides, or an inline component tree), workload selection
//! (zoo model or custom layer shapes), non-ideality spec, design-space
//! axes, and run configuration. Where [`crate::yamlite`] parses a single
//! component tree, this module parses whole documents of tagged sections:
//!
//! ```text
//! !Scenario                 # run configuration (required, first)
//! name: my_experiment
//! experiment: evaluate
//! !Architecture             # macro preset + overrides …
//! macro: base
//! rows: 256
//! !Component                # … or an inline yamlite component tree
//! name: buffer
//! temporal_reuse: [Inputs, Outputs]
//! !Workload
//! model: resnet18
//! !Noise
//! cell_variation: 0.1
//! ```
//!
//! The section *structure* is parsed here; the domain crates interpret
//! their own sections (`cimloop-workload` parses `!Workload`/`!Layer`,
//! `cimloop-noise` parses `!Noise`, `cimloop-dse` parses `!Space`, and
//! `cimloop-macros` resolves `!Architecture`). This keeps the dependency
//! graph acyclic: the spec crate knows sections and scalars, not DNNs or
//! Pareto grids.
//!
//! Scalar values keep their **raw source token** alongside the parsed
//! [`AttrValue`], so presentation layers can echo exactly what the author
//! wrote (`0.10` stays `0.10`, not `0.1`).

use crate::yamlite;
use crate::{AttrValue, Hierarchy, SpecError};

/// Section tags that open an inline yamlite component tree rather than a
/// key-value section.
const NODE_TAGS: [&str; 2] = ["Component", "Container"];

/// A scalar with both its parsed value and its raw source token.
#[derive(Debug, Clone, PartialEq)]
pub struct ScalarValue {
    /// The parsed value (int/float/bool/string).
    pub value: AttrValue,
    /// The raw token as written in the document (for faithful display).
    pub raw: String,
}

impl ScalarValue {
    fn parse(token: &str) -> Self {
        ScalarValue {
            value: yamlite::parse_scalar(token),
            raw: token.to_owned(),
        }
    }

    /// The scalar as a float, if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        self.value.as_float()
    }

    /// The scalar as an integer, if integral.
    pub fn as_i64(&self) -> Option<i64> {
        self.value.as_int()
    }
}

/// A parsed entry value: scalar, `[list]`, or `{ map }`.
#[derive(Debug, Clone, PartialEq)]
pub enum SpecValue {
    /// A single scalar.
    Scalar(ScalarValue),
    /// A `[a, b, c]` list of scalars.
    List(Vec<ScalarValue>),
    /// A `{ k: v, … }` inline map.
    Map(Vec<(String, ScalarValue)>),
}

/// One `key: value` entry of a section, with its source line.
#[derive(Debug, Clone, PartialEq)]
pub struct Entry {
    /// The entry key.
    pub key: String,
    /// The parsed value.
    pub value: SpecValue,
    /// 1-based source line.
    pub line: usize,
}

/// One tagged section of a scenario document (`!Scenario`, `!Workload`,
/// …), holding its `key: value` entries in document order.
#[derive(Debug, Clone, PartialEq)]
pub struct Section {
    tag: String,
    line: usize,
    entries: Vec<Entry>,
}

impl Section {
    /// The section's tag (without the `!`).
    pub fn tag(&self) -> &str {
        &self.tag
    }

    /// 1-based line the section opened on.
    pub fn line(&self) -> usize {
        self.line
    }

    /// The entries in document order.
    pub fn entries(&self) -> &[Entry] {
        &self.entries
    }

    /// Looks up an entry by key.
    pub fn get(&self, key: &str) -> Option<&Entry> {
        self.entries.iter().find(|e| e.key == key)
    }

    /// Whether the section has an entry with this key.
    pub fn contains(&self, key: &str) -> bool {
        self.get(key).is_some()
    }

    fn parse_err(&self, line: usize, message: String) -> SpecError {
        SpecError::Parse { line, message }
    }

    fn scalar(&self, key: &str) -> Option<(&ScalarValue, usize)> {
        match self.get(key) {
            Some(Entry {
                value: SpecValue::Scalar(s),
                line,
                ..
            }) => Some((s, *line)),
            _ => None,
        }
    }

    /// String value of `key` (any scalar's raw token qualifies).
    pub fn str(&self, key: &str) -> Option<&str> {
        self.scalar(key).map(|(s, _)| s.raw.as_str())
    }

    /// String value of `key`, or `default` when absent.
    pub fn str_or<'a>(&'a self, key: &str, default: &'a str) -> &'a str {
        self.str(key).unwrap_or(default)
    }

    /// Required string value of `key`.
    ///
    /// # Errors
    ///
    /// Returns [`SpecError::Parse`] naming the section when absent.
    pub fn require_str(&self, key: &str) -> Result<&str, SpecError> {
        self.str(key).ok_or_else(|| {
            self.parse_err(
                self.line,
                format!("section !{} is missing required key `{key}`", self.tag),
            )
        })
    }

    /// Float value of `key` (ints convert).
    ///
    /// # Errors
    ///
    /// Returns [`SpecError::Parse`] if present but not numeric.
    pub fn f64(&self, key: &str) -> Result<Option<f64>, SpecError> {
        match self.scalar(key) {
            None => Ok(None),
            Some((s, line)) => s.as_f64().map(Some).ok_or_else(|| {
                self.parse_err(line, format!("`{key}` must be a number, found `{}`", s.raw))
            }),
        }
    }

    /// Unsigned integer value of `key`.
    ///
    /// # Errors
    ///
    /// Returns [`SpecError::Parse`] if present but not a non-negative
    /// integer.
    pub fn u64(&self, key: &str) -> Result<Option<u64>, SpecError> {
        match self.scalar(key) {
            None => Ok(None),
            Some((s, line)) => match s.as_i64() {
                Some(v) if v >= 0 => Ok(Some(v as u64)),
                _ => Err(self.parse_err(
                    line,
                    format!("`{key}` must be a non-negative integer, found `{}`", s.raw),
                )),
            },
        }
    }

    /// `u64` with a default.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Self::u64`].
    pub fn u64_or(&self, key: &str, default: u64) -> Result<u64, SpecError> {
        Ok(self.u64(key)?.unwrap_or(default))
    }

    /// `u32` value of `key`.
    ///
    /// # Errors
    ///
    /// Returns [`SpecError::Parse`] if present but out of `u32` range.
    pub fn u32(&self, key: &str) -> Result<Option<u32>, SpecError> {
        match self.u64(key)? {
            None => Ok(None),
            Some(v) => u32::try_from(v)
                .map(Some)
                .map_err(|_| self.parse_err(self.line, format!("`{key}` is out of range: {v}"))),
        }
    }

    /// Boolean value of `key`.
    ///
    /// # Errors
    ///
    /// Returns [`SpecError::Parse`] if present but not `true`/`false`.
    pub fn bool(&self, key: &str) -> Result<Option<bool>, SpecError> {
        match self.scalar(key) {
            None => Ok(None),
            Some((s, line)) => s.value.as_bool().map(Some).ok_or_else(|| {
                self.parse_err(
                    line,
                    format!("`{key}` must be true or false, found `{}`", s.raw),
                )
            }),
        }
    }

    /// `bool` with a default.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Self::bool`].
    pub fn bool_or(&self, key: &str, default: bool) -> Result<bool, SpecError> {
        Ok(self.bool(key)?.unwrap_or(default))
    }

    /// The scalar list under `key`, if present.
    ///
    /// # Errors
    ///
    /// Returns [`SpecError::Parse`] if the entry is not a `[list]`.
    pub fn list(&self, key: &str) -> Result<Option<&[ScalarValue]>, SpecError> {
        match self.get(key) {
            None => Ok(None),
            Some(Entry {
                value: SpecValue::List(items),
                ..
            }) => Ok(Some(items)),
            Some(e) => Err(self.parse_err(e.line, format!("`{key}` must be a `[list]`"))),
        }
    }

    /// The list under `key` as `u64`s.
    ///
    /// # Errors
    ///
    /// Returns [`SpecError::Parse`] on non-integer items.
    pub fn u64_list(&self, key: &str) -> Result<Option<Vec<u64>>, SpecError> {
        let Some(items) = self.list(key)? else {
            return Ok(None);
        };
        let line = self.get(key).map(|e| e.line).unwrap_or(self.line);
        items
            .iter()
            .map(|s| match s.as_i64() {
                Some(v) if v >= 0 => Ok(v as u64),
                _ => Err(self.parse_err(
                    line,
                    format!(
                        "`{key}` entries must be non-negative integers, found `{}`",
                        s.raw
                    ),
                )),
            })
            .collect::<Result<Vec<u64>, _>>()
            .map(Some)
    }

    /// The list under `key` as `u32`s.
    ///
    /// # Errors
    ///
    /// Returns [`SpecError::Parse`] on non-integer or out-of-range items.
    pub fn u32_list(&self, key: &str) -> Result<Option<Vec<u32>>, SpecError> {
        let line = self.get(key).map(|e| e.line).unwrap_or(self.line);
        match self.u64_list(key)? {
            None => Ok(None),
            Some(v) => v
                .into_iter()
                .map(|n| {
                    u32::try_from(n).map_err(|_| {
                        self.parse_err(line, format!("`{key}` entry is out of range: {n}"))
                    })
                })
                .collect::<Result<Vec<u32>, _>>()
                .map(Some),
        }
    }

    /// The list under `key` as floats.
    ///
    /// # Errors
    ///
    /// Returns [`SpecError::Parse`] on non-numeric items.
    pub fn f64_list(&self, key: &str) -> Result<Option<Vec<f64>>, SpecError> {
        let Some(items) = self.list(key)? else {
            return Ok(None);
        };
        let line = self.get(key).map(|e| e.line).unwrap_or(self.line);
        items
            .iter()
            .map(|s| {
                s.as_f64().ok_or_else(|| {
                    self.parse_err(
                        line,
                        format!("`{key}` entries must be numbers, found `{}`", s.raw),
                    )
                })
            })
            .collect::<Result<Vec<f64>, _>>()
            .map(Some)
    }

    /// The list under `key` as raw string tokens.
    ///
    /// # Errors
    ///
    /// Returns [`SpecError::Parse`] if the entry is not a list.
    pub fn str_list(&self, key: &str) -> Result<Option<Vec<String>>, SpecError> {
        Ok(self
            .list(key)?
            .map(|items| items.iter().map(|s| s.raw.clone()).collect()))
    }
}

/// One `!Architecture` section: its key-value settings plus an optional
/// inline component tree (the yamlite nodes that followed it).
#[derive(Debug, Clone, PartialEq)]
pub struct ArchitectureSpec {
    /// The architecture's key-value settings (preset name, overrides).
    pub settings: Section,
    /// The inline component tree, when the section embeds one.
    pub hierarchy: Option<Hierarchy>,
}

/// A parsed scenario document: the `!Scenario` header plus any number of
/// tagged sections, in document order.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioDoc {
    scenario: Section,
    architectures: Vec<ArchitectureSpec>,
    sections: Vec<Section>,
}

impl ScenarioDoc {
    /// Parses a scenario document.
    ///
    /// # Errors
    ///
    /// Returns [`SpecError::Parse`] with a 1-based line number on
    /// malformed input, on duplicate keys within a section, or when the
    /// required `!Scenario` section is missing; inline component trees
    /// additionally surface [`crate::yamlite::parse`] errors.
    pub fn parse(text: &str) -> Result<Self, SpecError> {
        let mut sections: Vec<Section> = Vec::new();
        let mut architectures: Vec<ArchitectureSpec> = Vec::new();
        // An inline component tree in progress: raw yamlite lines plus the
        // 1-based line offset of the first buffered line (for error
        // mapping back to document coordinates).
        let mut tree: Option<(Vec<String>, usize)> = None;
        // Index into `architectures` the in-progress tree belongs to.
        let mut tree_owner: Option<usize> = None;

        let flush_tree = |tree: &mut Option<(Vec<String>, usize)>,
                          tree_owner: &mut Option<usize>,
                          architectures: &mut Vec<ArchitectureSpec>|
         -> Result<(), SpecError> {
            if let Some((lines, offset)) = tree.take() {
                let text = lines.join("\n");
                let hierarchy = yamlite::parse(&text).map_err(|e| match e {
                    SpecError::Parse { line, message } => SpecError::Parse {
                        line: line + offset - 1,
                        message,
                    },
                    other => other,
                })?;
                let owner = tree_owner.take().expect("tree always has an owner");
                architectures[owner].hierarchy = Some(hierarchy);
            }
            Ok(())
        };

        for (idx, raw) in text.lines().enumerate() {
            let line_no = idx + 1;
            let line = yamlite::strip_comment(raw).trim();
            if line.is_empty() {
                // Keep blank/comment-only lines as placeholders in an
                // in-progress component tree, so yamlite errors map back
                // to the right document line.
                if let Some((lines, _)) = &mut tree {
                    lines.push(String::new());
                }
                continue;
            }
            if let Some(tag) = line.strip_prefix('!') {
                let tag = tag.trim();
                if NODE_TAGS.contains(&tag) {
                    // An inline component tree; it attaches to the most
                    // recent !Architecture section.
                    if tree.is_none() {
                        let Some(owner) = architectures.len().checked_sub(1) else {
                            return Err(SpecError::Parse {
                                line: line_no,
                                message: format!(
                                    "`!{tag}` component tree must follow an !Architecture section"
                                ),
                            });
                        };
                        if architectures[owner].hierarchy.is_some() {
                            return Err(SpecError::Parse {
                                line: line_no,
                                message: "architecture already has a component tree".to_owned(),
                            });
                        }
                        tree = Some((Vec::new(), line_no));
                        tree_owner = Some(owner);
                    }
                    if let Some((lines, _)) = &mut tree {
                        lines.push(line.to_owned());
                    }
                    continue;
                }
                flush_tree(&mut tree, &mut tree_owner, &mut architectures)?;
                let section = Section {
                    tag: tag.to_owned(),
                    line: line_no,
                    entries: Vec::new(),
                };
                if tag == "Architecture" {
                    architectures.push(ArchitectureSpec {
                        settings: section,
                        hierarchy: None,
                    });
                } else {
                    sections.push(section);
                }
                continue;
            }
            if let Some((lines, _)) = &mut tree {
                lines.push(line.to_owned());
                continue;
            }
            let (key, value) = yamlite::split_key_value(line, line_no)?;
            // Entries attach to whichever section (architecture or plain)
            // opened most recently in the document.
            let target: &mut Section = {
                let arch_line = architectures.last().map(|a| a.settings.line);
                let plain_line = sections.last().map(|s| s.line);
                match (arch_line, plain_line) {
                    (Some(a), Some(p)) if a > p => {
                        &mut architectures.last_mut().expect("non-empty").settings
                    }
                    (Some(_), None) => &mut architectures.last_mut().expect("non-empty").settings,
                    (_, Some(_)) => sections.last_mut().expect("non-empty"),
                    (None, None) => {
                        return Err(SpecError::Parse {
                            line: line_no,
                            message: format!("`{key}` appears before any !Section tag"),
                        })
                    }
                }
            };
            if target.contains(key) {
                return Err(SpecError::Parse {
                    line: line_no,
                    message: format!("duplicate key `{key}` in section !{}", target.tag),
                });
            }
            let value = parse_value(value, line_no)?;
            target.entries.push(Entry {
                key: key.to_owned(),
                value,
                line: line_no,
            });
        }
        flush_tree(&mut tree, &mut tree_owner, &mut architectures)?;

        let scenario_idx = sections
            .iter()
            .position(|s| s.tag == "Scenario")
            .ok_or_else(|| SpecError::Parse {
                line: 1,
                message: "document has no !Scenario section".to_owned(),
            })?;
        let scenario = sections.remove(scenario_idx);
        Ok(ScenarioDoc {
            scenario,
            architectures,
            sections,
        })
    }

    /// The `!Scenario` header section.
    pub fn scenario(&self) -> &Section {
        &self.scenario
    }

    /// The scenario's name (the `name:` key of `!Scenario`).
    ///
    /// # Errors
    ///
    /// Returns [`SpecError::Parse`] when the name is missing.
    pub fn name(&self) -> Result<&str, SpecError> {
        self.scenario.require_str("name")
    }

    /// The experiment kind (`experiment:` key; defaults to `evaluate`).
    pub fn experiment(&self) -> &str {
        self.scenario.str_or("experiment", "evaluate")
    }

    /// All `!Architecture` sections, in document order.
    pub fn architectures(&self) -> &[ArchitectureSpec] {
        &self.architectures
    }

    /// The first `!Architecture` section, if any.
    pub fn architecture(&self) -> Option<&ArchitectureSpec> {
        self.architectures.first()
    }

    /// The first section with `tag` (besides `!Scenario`/`!Architecture`).
    pub fn section(&self, tag: &str) -> Option<&Section> {
        self.sections.iter().find(|s| s.tag == tag)
    }

    /// All sections with `tag`, in document order.
    pub fn sections(&self, tag: &str) -> impl Iterator<Item = &Section> {
        let tag = tag.to_owned();
        self.sections.iter().filter(move |s| s.tag == tag)
    }
}

fn parse_value(value: &str, line_no: usize) -> Result<SpecValue, SpecError> {
    if value.starts_with('[') {
        let items = yamlite::parse_list(value, line_no)?;
        Ok(SpecValue::List(
            items.iter().map(|t| ScalarValue::parse(t)).collect(),
        ))
    } else if value.starts_with('{') {
        let pairs = yamlite::parse_inline_map(value, line_no)?;
        Ok(SpecValue::Map(
            pairs
                .into_iter()
                .map(|(k, v)| (k, ScalarValue::parse(&v)))
                .collect(),
        ))
    } else {
        Ok(SpecValue::Scalar(ScalarValue::parse(value)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const DOC: &str = "
!Scenario
name: demo          # comments still work
experiment: sweep
!Architecture
macro: base
rows: 256
calibrated: false
!Sweep
variations: [0.00, 0.05]
adc_bits: [8, 6]
metrics: [snr_db, enob]
!Noise
cell_variation: 0.1
";

    #[test]
    fn parses_sections_and_scalars() {
        let doc = ScenarioDoc::parse(DOC).unwrap();
        assert_eq!(doc.name().unwrap(), "demo");
        assert_eq!(doc.experiment(), "sweep");
        let arch = doc.architecture().unwrap();
        assert_eq!(arch.settings.str("macro"), Some("base"));
        assert_eq!(arch.settings.u64("rows").unwrap(), Some(256));
        assert_eq!(arch.settings.bool("calibrated").unwrap(), Some(false));
        assert!(arch.hierarchy.is_none());
        let sweep = doc.section("Sweep").unwrap();
        assert_eq!(
            sweep.f64_list("variations").unwrap().unwrap(),
            vec![0.0, 0.05]
        );
        // Raw tokens are preserved for display.
        let raw: Vec<String> = sweep.str_list("variations").unwrap().unwrap();
        assert_eq!(raw, vec!["0.00", "0.05"]);
        assert_eq!(sweep.u32_list("adc_bits").unwrap().unwrap(), vec![8, 6]);
        let noise = doc.section("Noise").unwrap();
        assert_eq!(noise.f64("cell_variation").unwrap(), Some(0.1));
    }

    #[test]
    fn inline_component_tree_attaches_to_architecture() {
        let doc = ScenarioDoc::parse(
            "
!Scenario
name: inline
!Architecture
!Component
name: buffer
class: sram_buffer
temporal_reuse: [Inputs, Outputs]
!Container
name: macro
!Component
name: cell
temporal_reuse: [Weights]
spatial: { meshY: 4 }
!Workload
model: mvm
",
        )
        .unwrap();
        let arch = doc.architecture().unwrap();
        let h = arch.hierarchy.as_ref().expect("inline tree parsed");
        assert_eq!(h.len(), 3);
        assert!(h.component("cell").is_some());
        assert_eq!(doc.section("Workload").unwrap().str("model"), Some("mvm"));
    }

    #[test]
    fn missing_scenario_section_is_an_error() {
        let err = ScenarioDoc::parse("!Workload\nmodel: resnet18\n").unwrap_err();
        assert!(matches!(err, SpecError::Parse { .. }), "{err:?}");
    }

    #[test]
    fn duplicate_keys_rejected_with_line() {
        let err = ScenarioDoc::parse("!Scenario\nname: a\nname: b\n").unwrap_err();
        assert!(matches!(err, SpecError::Parse { line: 3, .. }), "{err:?}");
    }

    #[test]
    fn inline_tree_errors_map_to_document_lines() {
        // Line 5 of the document is the bad spatial line.
        let err = ScenarioDoc::parse(
            "!Scenario\nname: a\n!Architecture\n!Component\nname: c\nspatial: { meshX: 0 }\n",
        )
        .unwrap_err();
        assert!(matches!(err, SpecError::Parse { line: 6, .. }), "{err:?}");
    }

    #[test]
    fn inline_tree_errors_map_through_blank_and_comment_lines() {
        // Blank and comment-only lines inside the tree must not shift the
        // reported line: the bad spatial is on document line 8.
        let err = ScenarioDoc::parse(
            "!Scenario\nname: a\n!Architecture\n!Component\n\n# a comment\nname: c\nspatial: { meshX: 0 }\n",
        )
        .unwrap_err();
        assert!(matches!(err, SpecError::Parse { line: 8, .. }), "{err:?}");
    }

    #[test]
    fn orphan_tree_rejected() {
        let err = ScenarioDoc::parse("!Scenario\nname: a\n!Component\nname: c\n").unwrap_err();
        assert!(matches!(err, SpecError::Parse { line: 3, .. }), "{err:?}");
    }

    #[test]
    fn entries_before_any_section_rejected() {
        let err = ScenarioDoc::parse("name: orphan\n").unwrap_err();
        assert!(matches!(err, SpecError::Parse { line: 1, .. }), "{err:?}");
    }

    #[test]
    fn multiple_architectures_for_variants() {
        let doc = ScenarioDoc::parse(
            "!Scenario\nname: multi\n!Architecture\nname: quiet\nmacro: base\n\
             !Architecture\nname: noisy\nmacro: base\ncell_variation: 0.1\n",
        )
        .unwrap();
        assert_eq!(doc.architectures().len(), 2);
        assert_eq!(doc.architectures()[1].settings.str("name"), Some("noisy"));
    }
}
