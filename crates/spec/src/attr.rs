use std::collections::BTreeMap;
use std::fmt;

/// A single attribute value: integer, float, boolean, or string.
#[derive(Debug, Clone, PartialEq)]
pub enum AttrValue {
    /// Integer attribute (e.g., `resolution: 8`).
    Int(i64),
    /// Floating-point attribute (e.g., `supply_voltage: 0.8`).
    Float(f64),
    /// Boolean attribute (e.g., `signed: true`).
    Bool(bool),
    /// String attribute (e.g., `device: ReRAM`).
    Str(String),
}

impl AttrValue {
    /// Interprets the value as an integer if possible (floats with zero
    /// fractional part convert).
    pub fn as_int(&self) -> Option<i64> {
        match self {
            AttrValue::Int(v) => Some(*v),
            AttrValue::Float(v) if v.fract() == 0.0 && v.abs() < i64::MAX as f64 => Some(*v as i64),
            _ => None,
        }
    }

    /// Interprets the value as a float if possible (ints convert).
    pub fn as_float(&self) -> Option<f64> {
        match self {
            AttrValue::Float(v) => Some(*v),
            AttrValue::Int(v) => Some(*v as f64),
            _ => None,
        }
    }

    /// Interprets the value as a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            AttrValue::Bool(v) => Some(*v),
            _ => None,
        }
    }

    /// Interprets the value as a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            AttrValue::Str(v) => Some(v),
            _ => None,
        }
    }
}

impl fmt::Display for AttrValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AttrValue::Int(v) => write!(f, "{v}"),
            AttrValue::Float(v) => write!(f, "{v}"),
            AttrValue::Bool(v) => write!(f, "{v}"),
            AttrValue::Str(v) => write!(f, "{v}"),
        }
    }
}

impl From<i64> for AttrValue {
    fn from(v: i64) -> Self {
        AttrValue::Int(v)
    }
}

impl From<f64> for AttrValue {
    fn from(v: f64) -> Self {
        AttrValue::Float(v)
    }
}

impl From<bool> for AttrValue {
    fn from(v: bool) -> Self {
        AttrValue::Bool(v)
    }
}

impl From<&str> for AttrValue {
    fn from(v: &str) -> Self {
        AttrValue::Str(v.to_owned())
    }
}

impl From<String> for AttrValue {
    fn from(v: String) -> Self {
        AttrValue::Str(v)
    }
}

/// An ordered map of named attributes attached to a spec node.
///
/// Attributes carry component parameters such as ADC resolution, buffer
/// capacity, or supply voltage, which the circuit plug-ins consume.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Attributes {
    map: BTreeMap<String, AttrValue>,
}

impl Attributes {
    /// Creates an empty attribute set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets an attribute, replacing any previous value, and returns the
    /// previous value if there was one.
    pub fn set(
        &mut self,
        name: impl Into<String>,
        value: impl Into<AttrValue>,
    ) -> Option<AttrValue> {
        self.map.insert(name.into(), value.into())
    }

    /// Looks up an attribute by name.
    pub fn get(&self, name: &str) -> Option<&AttrValue> {
        self.map.get(name)
    }

    /// Integer attribute lookup (convertible floats accepted).
    pub fn int(&self, name: &str) -> Option<i64> {
        self.get(name).and_then(AttrValue::as_int)
    }

    /// Float attribute lookup (ints accepted).
    pub fn float(&self, name: &str) -> Option<f64> {
        self.get(name).and_then(AttrValue::as_float)
    }

    /// Boolean attribute lookup.
    pub fn bool(&self, name: &str) -> Option<bool> {
        self.get(name).and_then(AttrValue::as_bool)
    }

    /// String attribute lookup.
    pub fn str(&self, name: &str) -> Option<&str> {
        self.get(name).and_then(AttrValue::as_str)
    }

    /// Integer attribute with a default.
    pub fn int_or(&self, name: &str, default: i64) -> i64 {
        self.int(name).unwrap_or(default)
    }

    /// Float attribute with a default.
    pub fn float_or(&self, name: &str, default: f64) -> f64 {
        self.float(name).unwrap_or(default)
    }

    /// Whether an attribute with this name exists.
    pub fn contains(&self, name: &str) -> bool {
        self.map.contains_key(name)
    }

    /// Number of attributes.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Iterates over `(name, value)` pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &AttrValue)> {
        self.map.iter().map(|(k, v)| (k.as_str(), v))
    }
}

impl<K: Into<String>, V: Into<AttrValue>> FromIterator<(K, V)> for Attributes {
    fn from_iter<I: IntoIterator<Item = (K, V)>>(iter: I) -> Self {
        let mut attrs = Attributes::new();
        for (k, v) in iter {
            attrs.set(k, v);
        }
        attrs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn typed_accessors() {
        let mut attrs = Attributes::new();
        attrs.set("resolution", 8i64);
        attrs.set("voltage", 0.8);
        attrs.set("signed", true);
        attrs.set("device", "ReRAM");

        assert_eq!(attrs.int("resolution"), Some(8));
        assert_eq!(attrs.float("resolution"), Some(8.0)); // int as float
        assert_eq!(attrs.float("voltage"), Some(0.8));
        assert_eq!(attrs.int("voltage"), None); // 0.8 has a fraction
        assert_eq!(attrs.bool("signed"), Some(true));
        assert_eq!(attrs.str("device"), Some("ReRAM"));
        assert_eq!(attrs.str("missing"), None);
    }

    #[test]
    fn whole_floats_convert_to_int() {
        let mut attrs = Attributes::new();
        attrs.set("rows", 256.0);
        assert_eq!(attrs.int("rows"), Some(256));
    }

    #[test]
    fn defaults() {
        let attrs = Attributes::new();
        assert_eq!(attrs.int_or("x", 7), 7);
        assert_eq!(attrs.float_or("y", 1.5), 1.5);
        assert!(attrs.is_empty());
    }

    #[test]
    fn set_replaces_and_returns_previous() {
        let mut attrs = Attributes::new();
        assert_eq!(attrs.set("a", 1i64), None);
        assert_eq!(attrs.set("a", 2i64), Some(AttrValue::Int(1)));
        assert_eq!(attrs.int("a"), Some(2));
        assert_eq!(attrs.len(), 1);
    }

    #[test]
    fn from_iterator_collects() {
        let attrs: Attributes = vec![("a", 1i64), ("b", 2i64)].into_iter().collect();
        assert_eq!(attrs.len(), 2);
        assert_eq!(attrs.int("b"), Some(2));
    }

    #[test]
    fn display_round_trips_simple_values() {
        assert_eq!(AttrValue::Int(3).to_string(), "3");
        assert_eq!(AttrValue::Bool(false).to_string(), "false");
        assert_eq!(AttrValue::Str("x".into()).to_string(), "x");
    }
}
