use std::collections::HashSet;

use crate::{Component, Container, Node, SpecError, Tensor};

/// An ordered container-hierarchy describing a full CiM system.
///
/// The hierarchy is a *series* of nodes, outermost first. Every
/// [`Container`] groups all nodes declared after it (paper §III-B2), so the
/// nesting structure is implied by order: memory hierarchy first, then the
/// macro container, then the circuits inside it, down to the memory cells.
///
/// Use [`Hierarchy::builder`] to construct programmatically, or
/// [`Hierarchy::from_yamlite`] to parse the paper's Fig 5b text format.
#[derive(Debug, Clone, PartialEq)]
pub struct Hierarchy {
    nodes: Vec<Node>,
}

impl Hierarchy {
    /// Starts building a hierarchy.
    pub fn builder() -> HierarchyBuilder {
        HierarchyBuilder { nodes: Vec::new() }
    }

    /// Parses the YAML-subset text format of the paper's Fig 5b.
    ///
    /// # Errors
    ///
    /// Returns [`SpecError::Parse`] with a line number on malformed input,
    /// or any validation error of the resulting hierarchy.
    pub fn from_yamlite(text: &str) -> Result<Self, SpecError> {
        crate::yamlite::parse(text)
    }

    /// Creates a hierarchy from nodes in outermost-first order.
    ///
    /// # Errors
    ///
    /// Returns [`SpecError::Empty`] if there are no components,
    /// [`SpecError::DuplicateName`] on name collisions, or a node's own
    /// validation error.
    pub fn from_nodes(nodes: Vec<Node>) -> Result<Self, SpecError> {
        if !nodes.iter().any(|n| n.as_component().is_some()) {
            return Err(SpecError::Empty);
        }
        let mut seen = HashSet::new();
        for node in &nodes {
            node.validate()?;
            if !seen.insert(node.name().to_owned()) {
                return Err(SpecError::DuplicateName {
                    name: node.name().to_owned(),
                });
            }
        }
        Ok(Hierarchy { nodes })
    }

    /// All nodes, outermost first.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// Number of nodes (components + containers).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the hierarchy has no nodes. Always `false` for a constructed
    /// hierarchy; provided for API completeness.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Iterates over the components, outermost first.
    pub fn components(&self) -> impl Iterator<Item = &Component> {
        self.nodes.iter().filter_map(Node::as_component)
    }

    /// Iterates over the containers, outermost first.
    pub fn containers(&self) -> impl Iterator<Item = &Container> {
        self.nodes.iter().filter_map(Node::as_container)
    }

    /// Finds a component by name.
    pub fn component(&self, name: &str) -> Option<&Component> {
        self.components().find(|c| c.name() == name)
    }

    /// Finds a node (component or container) by name.
    pub fn node(&self, name: &str) -> Option<&Node> {
        self.nodes.iter().find(|n| n.name() == name)
    }

    /// Finds a node's position in the hierarchy.
    pub fn position(&self, name: &str) -> Option<usize> {
        self.nodes.iter().position(|n| n.name() == name)
    }

    /// Mutable access to a component by name (e.g., to adjust attributes
    /// during a design sweep).
    pub fn component_mut(&mut self, name: &str) -> Option<&mut Component> {
        self.nodes.iter_mut().find_map(|n| match n {
            Node::Component(c) if c.name() == name => Some(c),
            _ => None,
        })
    }

    /// The ordered levels with cumulative spatial context, outermost first.
    ///
    /// `outer_fanout` of a level is the product of spatial fanouts of all
    /// *preceding* nodes: the number of copies of this node's enclosing
    /// context. The node's own instances are `outer_fanout × spatial().fanout()`.
    pub fn levels(&self) -> Vec<Level<'_>> {
        let mut levels = Vec::with_capacity(self.nodes.len());
        let mut outer = 1u64;
        for (index, node) in self.nodes.iter().enumerate() {
            let kind = match node {
                Node::Container(_) => LevelKind::Fanout,
                Node::Component(c) => {
                    if Tensor::ALL.iter().any(|&t| c.reuse(t).is_temporal()) {
                        LevelKind::Storage
                    } else {
                        LevelKind::Transit
                    }
                }
            };
            levels.push(Level {
                index,
                node,
                kind,
                outer_fanout: outer,
            });
            outer = outer.saturating_mul(node.spatial().fanout());
        }
        levels
    }

    /// Total spatial instances of the innermost level's context.
    pub fn total_fanout(&self) -> u64 {
        self.nodes.iter().map(|n| n.spatial().fanout()).product()
    }

    /// Concatenates another hierarchy inside this one (its nodes become the
    /// innermost part of `self`), renaming nothing.
    ///
    /// This supports the paper's mix-and-match use: "a user may create one
    /// macro and test that macro in multiple systems".
    ///
    /// # Errors
    ///
    /// Returns [`SpecError::DuplicateName`] if names collide.
    pub fn nest(&self, inner: &Hierarchy) -> Result<Hierarchy, SpecError> {
        let mut nodes = self.nodes.clone();
        nodes.extend(inner.nodes.iter().cloned());
        Hierarchy::from_nodes(nodes)
    }
}

/// What role a level plays in the dataflow.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LevelKind {
    /// A component that stores at least one tensor across cycles.
    Storage,
    /// A component that only passes data through (converter, adder, wire).
    Transit,
    /// A container contributing spatial fanout only.
    Fanout,
}

/// One level of the flattened hierarchy with its spatial context.
#[derive(Debug, Clone, Copy)]
pub struct Level<'a> {
    index: usize,
    node: &'a Node,
    kind: LevelKind,
    outer_fanout: u64,
}

impl<'a> Level<'a> {
    /// Position in the hierarchy (0 = outermost).
    pub fn index(&self) -> usize {
        self.index
    }

    /// The underlying node.
    pub fn node(&self) -> &'a Node {
        self.node
    }

    /// The level's role.
    pub fn kind(&self) -> LevelKind {
        self.kind
    }

    /// Number of copies of this node's enclosing context (product of
    /// fanouts of all preceding nodes).
    pub fn outer_fanout(&self) -> u64 {
        self.outer_fanout
    }

    /// Total instances of this node (`outer_fanout × own fanout`).
    pub fn instances(&self) -> u64 {
        self.outer_fanout * self.node.spatial().fanout()
    }

    /// The node's name.
    pub fn name(&self) -> &'a str {
        self.node.name()
    }
}

/// Incremental builder for a [`Hierarchy`].
///
/// # Example
///
/// ```
/// use cimloop_spec::{Component, Container, Hierarchy, Reuse, Spatial, Tensor};
///
/// # fn main() -> Result<(), cimloop_spec::SpecError> {
/// let h = Hierarchy::builder()
///     .component(
///         Component::new("buffer")
///             .with_reuse(Tensor::Inputs, Reuse::Temporal)
///             .with_reuse(Tensor::Outputs, Reuse::Temporal),
///     )
///     .container(Container::new("macro"))
///     .component(
///         Component::new("memory_cell")
///             .with_reuse(Tensor::Weights, Reuse::Temporal)
///             .with_spatial(Spatial::new(1, 2))
///             .with_spatial_reuse(Tensor::Outputs),
///     )
///     .build()?;
/// assert_eq!(h.len(), 3);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Default)]
pub struct HierarchyBuilder {
    nodes: Vec<Node>,
}

impl HierarchyBuilder {
    /// Appends a component (becomes the innermost node so far).
    pub fn component(mut self, component: Component) -> Self {
        self.nodes.push(Node::Component(component));
        self
    }

    /// Appends a container; everything appended afterwards is inside it.
    pub fn container(mut self, container: Container) -> Self {
        self.nodes.push(Node::Container(container));
        self
    }

    /// Appends an already-wrapped node.
    pub fn node(mut self, node: Node) -> Self {
        self.nodes.push(node);
        self
    }

    /// Finishes the hierarchy.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Hierarchy::from_nodes`].
    pub fn build(self) -> Result<Hierarchy, SpecError> {
        Hierarchy::from_nodes(self.nodes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Reuse, Spatial};

    fn sample() -> Hierarchy {
        Hierarchy::builder()
            .component(
                Component::new("buffer")
                    .with_reuse(Tensor::Inputs, Reuse::Temporal)
                    .with_reuse(Tensor::Outputs, Reuse::Temporal),
            )
            .container(Container::new("macro"))
            .component(Component::new("DAC_bank").with_reuse(Tensor::Inputs, Reuse::NoCoalesce))
            .container(
                Container::new("column")
                    .with_spatial(Spatial::new(2, 1))
                    .with_spatial_reuse(Tensor::Inputs),
            )
            .component(Component::new("ADC").with_reuse(Tensor::Outputs, Reuse::NoCoalesce))
            .component(
                Component::new("memory_cell")
                    .with_reuse(Tensor::Weights, Reuse::Temporal)
                    .with_spatial(Spatial::new(1, 2))
                    .with_spatial_reuse(Tensor::Outputs),
            )
            .build()
            .unwrap()
    }

    #[test]
    fn builder_preserves_order() {
        let h = sample();
        let names: Vec<&str> = h.nodes().iter().map(Node::name).collect();
        assert_eq!(
            names,
            vec![
                "buffer",
                "macro",
                "DAC_bank",
                "column",
                "ADC",
                "memory_cell"
            ]
        );
    }

    #[test]
    fn component_lookup() {
        let h = sample();
        assert!(h.component("ADC").is_some());
        assert!(h.component("macro").is_none()); // container, not component
        assert!(h.node("macro").is_some());
        assert_eq!(h.position("column"), Some(3));
    }

    #[test]
    fn duplicate_names_rejected() {
        let result = Hierarchy::builder()
            .component(Component::new("x"))
            .component(Component::new("x"))
            .build();
        assert!(matches!(result, Err(SpecError::DuplicateName { .. })));
    }

    #[test]
    fn empty_hierarchy_rejected() {
        assert!(matches!(
            Hierarchy::builder().build(),
            Err(SpecError::Empty)
        ));
        // Containers alone are not enough.
        let result = Hierarchy::builder()
            .container(Container::new("macro"))
            .build();
        assert!(matches!(result, Err(SpecError::Empty)));
    }

    #[test]
    fn levels_track_cumulative_fanout() {
        let h = sample();
        let levels = h.levels();
        assert_eq!(levels.len(), 6);
        // Buffer and macro are outside any fanout.
        assert_eq!(levels[0].outer_fanout(), 1);
        assert_eq!(levels[2].outer_fanout(), 1);
        // ADC is inside the 2-wide column container.
        let adc = &levels[4];
        assert_eq!(adc.name(), "ADC");
        assert_eq!(adc.outer_fanout(), 2);
        assert_eq!(adc.instances(), 2);
        // Each column holds 2 memory cells: 4 instances total.
        let cell = &levels[5];
        assert_eq!(cell.instances(), 4);
    }

    #[test]
    fn level_kinds() {
        let h = sample();
        let kinds: Vec<LevelKind> = h.levels().iter().map(Level::kind).collect();
        assert_eq!(
            kinds,
            vec![
                LevelKind::Storage, // buffer
                LevelKind::Fanout,  // macro
                LevelKind::Transit, // DAC bank
                LevelKind::Fanout,  // column
                LevelKind::Transit, // ADC
                LevelKind::Storage, // memory cell
            ]
        );
    }

    #[test]
    fn nest_composes_hierarchies() {
        let system = Hierarchy::builder()
            .component(Component::new("DRAM").with_reuse_all(Tensor::ALL, Reuse::Temporal))
            .build()
            .unwrap();
        let h = system.nest(&sample()).unwrap();
        assert_eq!(h.len(), 7);
        assert_eq!(h.nodes()[0].name(), "DRAM");
        // Name collisions are rejected.
        assert!(system.nest(&system).is_err());
    }

    #[test]
    fn component_mut_allows_sweeps() {
        let mut h = sample();
        h.component_mut("ADC")
            .unwrap()
            .attributes_mut()
            .set("resolution", 8i64);
        assert_eq!(
            h.component("ADC").unwrap().attributes().int("resolution"),
            Some(8)
        );
    }

    #[test]
    fn total_fanout_is_product() {
        assert_eq!(sample().total_fanout(), 4);
    }
}
