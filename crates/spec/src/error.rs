use std::error::Error;
use std::fmt;

/// Error raised when building or parsing a specification.
#[derive(Debug, Clone, PartialEq)]
pub enum SpecError {
    /// Two nodes share the same name.
    DuplicateName {
        /// The conflicting name.
        name: String,
    },
    /// The hierarchy contains no components.
    Empty,
    /// A spatial mesh dimension was zero.
    ZeroMesh {
        /// Name of the node with the invalid mesh.
        node: String,
    },
    /// A tensor was given two conflicting reuse directives.
    ConflictingReuse {
        /// Name of the node with the conflict.
        node: String,
        /// The tensor with conflicting directives.
        tensor: &'static str,
    },
    /// Text-format parse failure.
    Parse {
        /// 1-based line number of the offending line.
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// A referenced node does not exist.
    UnknownNode {
        /// The missing node's name.
        name: String,
    },
    /// An attribute was missing or of the wrong type.
    Attribute {
        /// The node whose attribute was requested.
        node: String,
        /// The attribute name.
        attribute: String,
        /// What went wrong.
        message: String,
    },
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecError::DuplicateName { name } => {
                write!(f, "duplicate node name `{name}`")
            }
            SpecError::Empty => write!(f, "hierarchy contains no components"),
            SpecError::ZeroMesh { node } => {
                write!(f, "node `{node}` has a zero spatial mesh dimension")
            }
            SpecError::ConflictingReuse { node, tensor } => {
                write!(
                    f,
                    "node `{node}` gives tensor {tensor} conflicting reuse directives"
                )
            }
            SpecError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
            SpecError::UnknownNode { name } => write!(f, "no node named `{name}`"),
            SpecError::Attribute {
                node,
                attribute,
                message,
            } => write!(f, "attribute `{attribute}` of node `{node}`: {message}"),
        }
    }
}

impl Error for SpecError {}
