use crate::{Attributes, SpecError};

/// A workload tensor (the paper's three dataspaces).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Tensor {
    /// Input activations.
    Inputs,
    /// Weights (stationary in CiM arrays during inference).
    Weights,
    /// Output activations / partial sums.
    Outputs,
}

impl Tensor {
    /// All three tensors, in `[Inputs, Weights, Outputs]` order.
    pub const ALL: [Tensor; 3] = [Tensor::Inputs, Tensor::Weights, Tensor::Outputs];

    /// Canonical display name.
    pub fn name(self) -> &'static str {
        match self {
            Tensor::Inputs => "Inputs",
            Tensor::Weights => "Weights",
            Tensor::Outputs => "Outputs",
        }
    }

    /// Parses a tensor name (case-insensitive, singular or plural).
    pub fn parse(s: &str) -> Option<Self> {
        match s.to_ascii_lowercase().as_str() {
            "input" | "inputs" => Some(Tensor::Inputs),
            "weight" | "weights" => Some(Tensor::Weights),
            "output" | "outputs" => Some(Tensor::Outputs),
            _ => None,
        }
    }
}

impl std::fmt::Display for Tensor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Per-tensor data movement/reuse behaviour of a component (paper §III-B1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Reuse {
    /// Stores data between cycles; can always coalesce.
    Temporal,
    /// No storage across cycles, but merges repeated accesses of the same
    /// value into one backing-store access (e.g., an adder's output).
    Coalesce,
    /// No storage and no coalescing: every pass re-fetches from backing
    /// storage (e.g., a DAC or ADC convert).
    NoCoalesce,
    /// The tensor passes by without activating this component.
    #[default]
    Bypass,
}

impl Reuse {
    /// Whether this directive stores data across cycles.
    pub fn is_temporal(self) -> bool {
        self == Reuse::Temporal
    }

    /// Whether the component is activated by (bills actions for) this tensor.
    pub fn is_active(self) -> bool {
        self != Reuse::Bypass
    }

    /// Whether repeated accesses of the same value coalesce into one
    /// backing-store access.
    pub fn coalesces(self) -> bool {
        matches!(self, Reuse::Temporal | Reuse::Coalesce)
    }
}

/// The reuse directive for each of the three tensors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TensorDirectives {
    /// Directive for input activations.
    pub inputs: Reuse,
    /// Directive for weights.
    pub weights: Reuse,
    /// Directive for outputs/partial sums.
    pub outputs: Reuse,
}

impl TensorDirectives {
    /// The directive for `tensor`.
    pub fn get(&self, tensor: Tensor) -> Reuse {
        match tensor {
            Tensor::Inputs => self.inputs,
            Tensor::Weights => self.weights,
            Tensor::Outputs => self.outputs,
        }
    }

    /// Sets the directive for `tensor`.
    pub fn set(&mut self, tensor: Tensor, reuse: Reuse) {
        match tensor {
            Tensor::Inputs => self.inputs = reuse,
            Tensor::Weights => self.weights = reuse,
            Tensor::Outputs => self.outputs = reuse,
        }
    }

    /// Tensors that activate this component (non-bypass).
    pub fn active_tensors(&self) -> impl Iterator<Item = Tensor> + '_ {
        Tensor::ALL
            .into_iter()
            .filter(move |&t| self.get(t).is_active())
    }
}

/// Spatial fanout of a node: `mesh_x × mesh_y` instances.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Spatial {
    /// Instances along X (the paper's `meshX`).
    pub mesh_x: u64,
    /// Instances along Y (the paper's `meshY`).
    pub mesh_y: u64,
}

impl Spatial {
    /// A single instance (no fanout).
    pub const UNIT: Spatial = Spatial {
        mesh_x: 1,
        mesh_y: 1,
    };

    /// Creates a fanout of `mesh_x × mesh_y`.
    pub fn new(mesh_x: u64, mesh_y: u64) -> Self {
        Spatial { mesh_x, mesh_y }
    }

    /// Total number of instances.
    pub fn fanout(&self) -> u64 {
        self.mesh_x * self.mesh_y
    }
}

impl Default for Spatial {
    fn default() -> Self {
        Spatial::UNIT
    }
}

/// A component: anything that may move or reuse data (paper §III-B).
///
/// Components carry a `class` (resolved to an energy/area model by the
/// plug-in library), free-form [`Attributes`], per-tensor reuse directives,
/// and an optional spatial fanout with per-tensor spatial reuse.
///
/// # Example
///
/// ```
/// use cimloop_spec::{Component, Reuse, Tensor};
///
/// let adc = Component::new("ADC")
///     .with_class("sar_adc")
///     .with_reuse(Tensor::Outputs, Reuse::NoCoalesce)
///     .with_attr("resolution", 8i64);
/// assert_eq!(adc.reuse(Tensor::Outputs), Reuse::NoCoalesce);
/// assert_eq!(adc.reuse(Tensor::Inputs), Reuse::Bypass);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Component {
    name: String,
    class: String,
    directives: TensorDirectives,
    spatial: Spatial,
    spatial_reuse: [bool; 3],
    attributes: Attributes,
}

impl Component {
    /// Creates a component with the given name, default (bypass-everything)
    /// directives, unit fanout, and no class.
    pub fn new(name: impl Into<String>) -> Self {
        Component {
            name: name.into(),
            class: String::new(),
            directives: TensorDirectives::default(),
            spatial: Spatial::UNIT,
            spatial_reuse: [false; 3],
            attributes: Attributes::new(),
        }
    }

    /// Sets the component class (the plug-in model to use).
    pub fn with_class(mut self, class: impl Into<String>) -> Self {
        self.class = class.into();
        self
    }

    /// Sets the reuse directive for one tensor.
    pub fn with_reuse(mut self, tensor: Tensor, reuse: Reuse) -> Self {
        self.directives.set(tensor, reuse);
        self
    }

    /// Sets the same reuse directive for several tensors.
    pub fn with_reuse_all(
        mut self,
        tensors: impl IntoIterator<Item = Tensor>,
        reuse: Reuse,
    ) -> Self {
        for t in tensors {
            self.directives.set(t, reuse);
        }
        self
    }

    /// Sets the spatial fanout.
    pub fn with_spatial(mut self, spatial: Spatial) -> Self {
        self.spatial = spatial;
        self
    }

    /// Marks `tensor` as spatially reused (multicast/reduced) across this
    /// component's instances.
    pub fn with_spatial_reuse(mut self, tensor: Tensor) -> Self {
        self.spatial_reuse[tensor as usize] = true;
        self
    }

    /// Adds an attribute.
    pub fn with_attr(
        mut self,
        name: impl Into<String>,
        value: impl Into<crate::AttrValue>,
    ) -> Self {
        self.attributes.set(name, value);
        self
    }

    /// The component's unique name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The component class ("" if unset).
    pub fn class(&self) -> &str {
        &self.class
    }

    /// Reuse directive for `tensor`.
    pub fn reuse(&self, tensor: Tensor) -> Reuse {
        self.directives.get(tensor)
    }

    /// All three directives.
    pub fn directives(&self) -> &TensorDirectives {
        &self.directives
    }

    /// Mutable access to the directives.
    pub fn directives_mut(&mut self) -> &mut TensorDirectives {
        &mut self.directives
    }

    /// Spatial fanout of this component.
    pub fn spatial(&self) -> Spatial {
        self.spatial
    }

    /// Whether `tensor` is spatially reused across instances.
    pub fn spatial_reuse(&self, tensor: Tensor) -> bool {
        self.spatial_reuse[tensor as usize]
    }

    /// The component's attributes.
    pub fn attributes(&self) -> &Attributes {
        &self.attributes
    }

    /// Mutable access to the attributes.
    pub fn attributes_mut(&mut self) -> &mut Attributes {
        &mut self.attributes
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns [`SpecError::ZeroMesh`] if either mesh dimension is zero.
    pub fn validate(&self) -> Result<(), SpecError> {
        if self.spatial.mesh_x == 0 || self.spatial.mesh_y == 0 {
            return Err(SpecError::ZeroMesh {
                node: self.name.clone(),
            });
        }
        Ok(())
    }
}

/// A container: a grouping of the components/containers declared after it.
///
/// Containers isolate local design decisions (paper §III-B2), carry spatial
/// fanout (e.g., `column` with `meshX: 2`), and declare which tensors are
/// spatially reused between the units they replicate.
#[derive(Debug, Clone, PartialEq)]
pub struct Container {
    name: String,
    spatial: Spatial,
    spatial_reuse: [bool; 3],
    attributes: Attributes,
}

impl Container {
    /// Creates a container with unit fanout.
    pub fn new(name: impl Into<String>) -> Self {
        Container {
            name: name.into(),
            spatial: Spatial::UNIT,
            spatial_reuse: [false; 3],
            attributes: Attributes::new(),
        }
    }

    /// Sets the spatial fanout.
    pub fn with_spatial(mut self, spatial: Spatial) -> Self {
        self.spatial = spatial;
        self
    }

    /// Marks `tensor` as spatially reused (multicast/reduced) across this
    /// container's units.
    pub fn with_spatial_reuse(mut self, tensor: Tensor) -> Self {
        self.spatial_reuse[tensor as usize] = true;
        self
    }

    /// Adds an attribute.
    pub fn with_attr(
        mut self,
        name: impl Into<String>,
        value: impl Into<crate::AttrValue>,
    ) -> Self {
        self.attributes.set(name, value);
        self
    }

    /// The container's unique name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Spatial fanout.
    pub fn spatial(&self) -> Spatial {
        self.spatial
    }

    /// Whether `tensor` is spatially reused across units.
    pub fn spatial_reuse(&self, tensor: Tensor) -> bool {
        self.spatial_reuse[tensor as usize]
    }

    /// The container's attributes.
    pub fn attributes(&self) -> &Attributes {
        &self.attributes
    }

    /// Mutable access to the attributes.
    pub fn attributes_mut(&mut self) -> &mut Attributes {
        &mut self.attributes
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns [`SpecError::ZeroMesh`] if either mesh dimension is zero.
    pub fn validate(&self) -> Result<(), SpecError> {
        if self.spatial.mesh_x == 0 || self.spatial.mesh_y == 0 {
            return Err(SpecError::ZeroMesh {
                node: self.name.clone(),
            });
        }
        Ok(())
    }
}

/// One entry in the ordered hierarchy: a component or a container opening.
#[derive(Debug, Clone, PartialEq)]
pub enum Node {
    /// A leaf component.
    Component(Component),
    /// A container that groups all subsequent nodes.
    Container(Container),
}

impl Node {
    /// The node's name.
    pub fn name(&self) -> &str {
        match self {
            Node::Component(c) => c.name(),
            Node::Container(c) => c.name(),
        }
    }

    /// Spatial fanout of the node.
    pub fn spatial(&self) -> Spatial {
        match self {
            Node::Component(c) => c.spatial(),
            Node::Container(c) => c.spatial(),
        }
    }

    /// Whether `tensor` is spatially reused across the node's instances.
    pub fn spatial_reuse(&self, tensor: Tensor) -> bool {
        match self {
            Node::Component(c) => c.spatial_reuse(tensor),
            Node::Container(c) => c.spatial_reuse(tensor),
        }
    }

    /// The node's attributes.
    pub fn attributes(&self) -> &Attributes {
        match self {
            Node::Component(c) => c.attributes(),
            Node::Container(c) => c.attributes(),
        }
    }

    /// Returns the component if this node is one.
    pub fn as_component(&self) -> Option<&Component> {
        match self {
            Node::Component(c) => Some(c),
            Node::Container(_) => None,
        }
    }

    /// Returns the container if this node is one.
    pub fn as_container(&self) -> Option<&Container> {
        match self {
            Node::Container(c) => Some(c),
            Node::Component(_) => None,
        }
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Propagates the wrapped node's validation error.
    pub fn validate(&self) -> Result<(), SpecError> {
        match self {
            Node::Component(c) => c.validate(),
            Node::Container(c) => c.validate(),
        }
    }
}

impl From<Component> for Node {
    fn from(c: Component) -> Self {
        Node::Component(c)
    }
}

impl From<Container> for Node {
    fn from(c: Container) -> Self {
        Node::Container(c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tensor_parse_is_lenient() {
        assert_eq!(Tensor::parse("Inputs"), Some(Tensor::Inputs));
        assert_eq!(Tensor::parse("weight"), Some(Tensor::Weights));
        assert_eq!(Tensor::parse("OUTPUTS"), Some(Tensor::Outputs));
        assert_eq!(Tensor::parse("psums"), None);
    }

    #[test]
    fn reuse_predicates() {
        assert!(Reuse::Temporal.is_temporal());
        assert!(Reuse::Temporal.coalesces());
        assert!(Reuse::Coalesce.coalesces());
        assert!(!Reuse::NoCoalesce.coalesces());
        assert!(!Reuse::Bypass.is_active());
        assert!(Reuse::NoCoalesce.is_active());
    }

    #[test]
    fn directives_default_to_bypass() {
        let d = TensorDirectives::default();
        for t in Tensor::ALL {
            assert_eq!(d.get(t), Reuse::Bypass);
        }
        assert_eq!(d.active_tensors().count(), 0);
    }

    #[test]
    fn component_builder_chain() {
        let cell = Component::new("memory_cell")
            .with_class("sram_cim_cell")
            .with_reuse(Tensor::Weights, Reuse::Temporal)
            .with_spatial(Spatial::new(1, 128))
            .with_spatial_reuse(Tensor::Outputs)
            .with_attr("rows", 128i64);
        assert_eq!(cell.name(), "memory_cell");
        assert_eq!(cell.class(), "sram_cim_cell");
        assert_eq!(cell.spatial().fanout(), 128);
        assert!(cell.spatial_reuse(Tensor::Outputs));
        assert!(!cell.spatial_reuse(Tensor::Inputs));
        assert_eq!(cell.attributes().int("rows"), Some(128));
        assert!(cell.validate().is_ok());
    }

    #[test]
    fn zero_mesh_rejected() {
        let bad = Component::new("x").with_spatial(Spatial::new(0, 4));
        assert!(matches!(bad.validate(), Err(SpecError::ZeroMesh { .. })));
        let bad = Container::new("y").with_spatial(Spatial::new(4, 0));
        assert!(matches!(bad.validate(), Err(SpecError::ZeroMesh { .. })));
    }

    #[test]
    fn node_conversions() {
        let n: Node = Component::new("a").into();
        assert!(n.as_component().is_some());
        assert!(n.as_container().is_none());
        let n: Node = Container::new("b").into();
        assert_eq!(n.name(), "b");
        assert!(n.as_container().is_some());
    }

    #[test]
    fn spatial_fanout_multiplies() {
        assert_eq!(Spatial::new(3, 4).fanout(), 12);
        assert_eq!(Spatial::UNIT.fanout(), 1);
    }
}
