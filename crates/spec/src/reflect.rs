//! Home-grown reflection over spec-facing types: one data model, many
//! formats.
//!
//! The yamlite scenario dialect grew a bespoke `from_section` surface in
//! every domain crate — each with its own unknown-key policy (some
//! rejected, some silently ignored) and its own hand-rolled type checks.
//! This module centralizes that surface into three small pieces:
//!
//! - [`Value`] — an ordered, raw-token-preserving document tree. Every
//!   scalar keeps the exact source token (`0.10` stays `0.10`), which is
//!   what makes yamlite → JSON → yamlite round-trips byte-identical.
//! - [`Schema`] / [`FieldDescriptor`] — a field-descriptor model (name,
//!   kind, required, doc) declared once per section type via the
//!   [`crate::reflect_section!`] macro. [`Schema::check`] is the single
//!   schema-driven walk that replaces the per-crate parse bodies:
//!   unknown keys fail with a line-numbered error naming the nearest
//!   valid field, and type errors keep their source lines.
//! - [`diff`] — a structural differ over [`Value`] trees that turns
//!   byte-equality failures ("golden hash mismatch") into field-level
//!   "what changed" reports.
//!
//! The JSON codec over the same model lives in [`crate::json`]; the
//! yamlite codec is [`crate::ScenarioDoc::parse`] /
//! [`crate::ScenarioDoc::write`].

use crate::scenario::{ScalarValue, Section, SpecValue};
use crate::SpecError;

/// An ordered, raw-token-preserving reflected value.
///
/// This is the format-agnostic core the yamlite and JSON codecs share.
/// Maps preserve insertion (document) order; scalars carry both the
/// parsed [`crate::AttrValue`] and the raw source token.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// A single scalar (int/float/bool/string) with its raw token.
    Scalar(ScalarValue),
    /// An ordered sequence.
    List(Vec<Value>),
    /// An ordered key → value map (document order, keys unique).
    Map(Vec<(String, Value)>),
}

impl Value {
    /// A scalar value parsed from a raw token (yamlite scalar rules).
    pub fn scalar(raw: &str) -> Value {
        Value::Scalar(ScalarValue::parse(raw))
    }

    /// An empty map.
    pub fn map() -> Value {
        Value::Map(Vec::new())
    }

    /// Pushes `key: value` onto a map value; no-op on other variants.
    pub fn insert(&mut self, key: &str, value: Value) {
        if let Value::Map(pairs) = self {
            pairs.push((key.to_owned(), value));
        }
    }

    /// Looks up `key` in a map value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Map(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The scalar's raw token, when this is a scalar.
    pub fn raw(&self) -> Option<&str> {
        match self {
            Value::Scalar(s) => Some(s.raw.as_str()),
            _ => None,
        }
    }

    /// The list items, when this is a list.
    pub fn items(&self) -> Option<&[Value]> {
        match self {
            Value::List(items) => Some(items),
            _ => None,
        }
    }

    /// A one-line summary for diff reports: the raw token for scalars,
    /// a size summary for lists/maps.
    pub fn summary(&self) -> String {
        match self {
            Value::Scalar(s) => s.raw.clone(),
            Value::List(items) => format!("[{} items]", items.len()),
            Value::Map(pairs) => format!("{{{} keys}}", pairs.len()),
        }
    }
}

/// The declared type of a schema field.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FieldKind {
    /// A numeric scalar (ints convert).
    F64,
    /// A non-negative integer scalar.
    U64,
    /// A non-negative integer scalar within `u32` range.
    U32,
    /// A `true`/`false` scalar.
    Bool,
    /// Any scalar, kept as its raw token.
    Str,
    /// A `[list]` of numbers.
    F64List,
    /// A `[list]` of non-negative integers.
    U64List,
    /// A `[list]` of non-negative integers within `u32` range.
    U32List,
    /// A `[list]` of raw tokens.
    StrList,
}

impl FieldKind {
    /// Human description used in type-error messages.
    pub fn describe(self) -> &'static str {
        match self {
            FieldKind::F64 => "a number",
            FieldKind::U64 | FieldKind::U32 => "a non-negative integer",
            FieldKind::Bool => "true or false",
            FieldKind::Str => "a scalar",
            FieldKind::F64List => "a `[list]` of numbers",
            FieldKind::U64List | FieldKind::U32List => "a `[list]` of non-negative integers",
            FieldKind::StrList => "a `[list]`",
        }
    }

    /// Type-checks the entry under `key` (absent entries pass).
    ///
    /// # Errors
    ///
    /// Returns [`SpecError::Parse`] at the entry's source line when the
    /// value does not match this kind.
    pub fn check(self, section: &Section, key: &str) -> Result<(), SpecError> {
        let Some(entry) = section.get(key) else {
            return Ok(());
        };
        let shape_ok = match self {
            FieldKind::F64 | FieldKind::U64 | FieldKind::U32 | FieldKind::Bool | FieldKind::Str => {
                matches!(entry.value, SpecValue::Scalar(_))
            }
            FieldKind::F64List | FieldKind::U64List | FieldKind::U32List | FieldKind::StrList => {
                matches!(entry.value, SpecValue::List(_))
            }
        };
        if !shape_ok {
            return Err(SpecError::Parse {
                line: entry.line,
                message: format!("`{key}` must be {}", self.describe()),
            });
        }
        match self {
            FieldKind::F64 => section.f64(key).map(drop),
            FieldKind::U64 => section.u64(key).map(drop),
            FieldKind::U32 => section.u32(key).map(drop),
            FieldKind::Bool => section.bool(key).map(drop),
            FieldKind::Str => Ok(()),
            FieldKind::F64List => section.f64_list(key).map(drop),
            FieldKind::U64List => section.u64_list(key).map(drop),
            FieldKind::U32List => section.u32_list(key).map(drop),
            FieldKind::StrList => section.str_list(key).map(drop),
        }
    }
}

/// One reflected field of a section schema.
#[derive(Debug, Clone, Copy)]
pub struct FieldDescriptor {
    /// The spec key (e.g. `cell_variation`).
    pub name: &'static str,
    /// The declared value type.
    pub kind: FieldKind,
    /// Whether the key must be present.
    pub required: bool,
    /// One-line documentation (surfaced by tooling).
    pub doc: &'static str,
}

/// The reflected schema of one section type: its tag and fields.
#[derive(Debug, Clone, Copy)]
pub struct Schema {
    /// The section tag this schema describes (without the `!`).
    pub tag: &'static str,
    /// The declared fields.
    pub fields: &'static [FieldDescriptor],
}

impl Schema {
    /// Looks up a field descriptor by key.
    pub fn field(&self, name: &str) -> Option<&FieldDescriptor> {
        self.fields.iter().find(|d| d.name == name)
    }

    /// Validates a section against this schema: every entry must name a
    /// declared field and match its kind, and required fields must be
    /// present. This is the one schema-driven walk shared by every
    /// section decoder — unknown keys fail with a line-numbered error
    /// naming the nearest valid field.
    ///
    /// # Errors
    ///
    /// Returns [`SpecError::Parse`] with the offending entry's line (or
    /// the section's line for missing required fields).
    pub fn check(&self, section: &Section) -> Result<(), SpecError> {
        for entry in section.entries() {
            match self.field(&entry.key) {
                Some(d) => d.kind.check(section, d.name)?,
                None => {
                    return Err(SpecError::Parse {
                        line: entry.line,
                        message: unknown_key_message(
                            &entry.key,
                            section.tag(),
                            self.fields.iter().map(|d| d.name),
                        ),
                    })
                }
            }
        }
        for d in self.fields.iter().filter(|d| d.required) {
            if !section.contains(d.name) {
                return Err(SpecError::Parse {
                    line: section.line(),
                    message: format!(
                        "section !{} is missing required key `{}`",
                        section.tag(),
                        d.name
                    ),
                });
            }
        }
        Ok(())
    }
}

/// A type with a reflected section schema (implemented by
/// [`crate::reflect_section!`]).
pub trait Reflect {
    /// The type's field-descriptor schema.
    fn schema() -> &'static Schema;
}

/// Builds the "unknown key" diagnostic: names the nearest valid field
/// (edit distance) and lists the valid keys.
pub fn unknown_key_message<'a>(
    key: &str,
    tag: &str,
    valid: impl Iterator<Item = &'a str>,
) -> String {
    let valid: Vec<&str> = valid.collect();
    let mut message = format!("unknown key `{key}` in section !{tag}");
    if let Some(near) = nearest(key, &valid) {
        message.push_str(&format!(" (did you mean `{near}`?)"));
    }
    if !valid.is_empty() {
        message.push_str(&format!("; valid keys: {}", valid.join(", ")));
    }
    message
}

/// The candidate closest to `key` by edit distance, when close enough
/// to plausibly be a typo.
pub fn nearest<'a>(key: &str, candidates: &[&'a str]) -> Option<&'a str> {
    let best = candidates
        .iter()
        .map(|c| (edit_distance(key, c), *c))
        .min_by_key(|(d, _)| *d)?;
    let threshold = (key.chars().count() / 3).max(2);
    (best.0 <= threshold).then_some(best.1)
}

fn edit_distance(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut curr = vec![0usize; b.len() + 1];
    for (i, ca) in a.iter().enumerate() {
        curr[0] = i + 1;
        for (j, cb) in b.iter().enumerate() {
            let sub = prev[j] + usize::from(ca != cb);
            curr[j + 1] = sub.min(prev[j + 1] + 1).min(curr[j] + 1);
        }
        std::mem::swap(&mut prev, &mut curr);
    }
    prev[b.len()]
}

/// One entry of a structural diff: the path that changed and the value
/// on each side (`None` when the side lacks the path).
#[derive(Debug, Clone, PartialEq)]
pub struct DiffEntry {
    /// Dotted/indexed path, e.g. `sections[1].entries.adc_bits[0]`.
    pub path: String,
    /// The left-hand value's summary, when present on the left.
    pub left: Option<String>,
    /// The right-hand value's summary, when present on the right.
    pub right: Option<String>,
}

impl std::fmt::Display for DiffEntry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match (&self.left, &self.right) {
            (Some(l), Some(r)) => write!(f, "{}: `{}` -> `{}`", self.path, l, r),
            (Some(l), None) => write!(f, "- {}: `{}`", self.path, l),
            (None, Some(r)) => write!(f, "+ {}: `{}`", self.path, r),
            (None, None) => write!(f, "{}: (no change)", self.path),
        }
    }
}

/// Structurally compares two reflected values, reporting every path
/// whose raw content differs. An empty result means the values are
/// identical (including raw scalar tokens).
pub fn diff(left: &Value, right: &Value) -> Vec<DiffEntry> {
    let mut out = Vec::new();
    walk("", left, right, &mut out);
    out
}

/// Renders a diff as one line per changed path.
pub fn render_diff(entries: &[DiffEntry]) -> String {
    entries
        .iter()
        .map(|e| e.to_string())
        .collect::<Vec<_>>()
        .join("\n")
}

fn join_key(path: &str, key: &str) -> String {
    if path.is_empty() {
        key.to_owned()
    } else {
        format!("{path}.{key}")
    }
}

fn walk(path: &str, left: &Value, right: &Value, out: &mut Vec<DiffEntry>) {
    match (left, right) {
        (Value::Scalar(l), Value::Scalar(r)) => {
            if l.raw != r.raw {
                out.push(DiffEntry {
                    path: path.to_owned(),
                    left: Some(l.raw.clone()),
                    right: Some(r.raw.clone()),
                });
            }
        }
        (Value::List(ls), Value::List(rs)) => {
            for i in 0..ls.len().max(rs.len()) {
                let item_path = format!("{path}[{i}]");
                match (ls.get(i), rs.get(i)) {
                    (Some(l), Some(r)) => walk(&item_path, l, r, out),
                    (Some(l), None) => out.push(DiffEntry {
                        path: item_path,
                        left: Some(l.summary()),
                        right: None,
                    }),
                    (None, Some(r)) => out.push(DiffEntry {
                        path: item_path,
                        left: None,
                        right: Some(r.summary()),
                    }),
                    (None, None) => {}
                }
            }
        }
        (Value::Map(ls), Value::Map(rs)) => {
            let rget = |k: &str| rs.iter().find(|(rk, _)| rk == k).map(|(_, v)| v);
            for (k, l) in ls {
                let key_path = join_key(path, k);
                match rget(k) {
                    Some(r) => walk(&key_path, l, r, out),
                    None => out.push(DiffEntry {
                        path: key_path,
                        left: Some(l.summary()),
                        right: None,
                    }),
                }
            }
            for (k, r) in rs {
                if !ls.iter().any(|(lk, _)| lk == k) {
                    out.push(DiffEntry {
                        path: join_key(path, k),
                        left: None,
                        right: Some(r.summary()),
                    });
                }
            }
        }
        // Shape mismatch: report the node itself.
        (l, r) => out.push(DiffEntry {
            path: path.to_owned(),
            left: Some(l.summary()),
            right: Some(r.summary()),
        }),
    }
}

/// Declares a reflected section view: a struct with one public field per
/// spec key, a [`Reflect`] schema built from the same declarations, and
/// a `decode` constructor that runs the generic schema walk
/// ([`Schema::check`]) before reading the typed fields.
///
/// Field kinds (in brackets) pick the storage type and decoder:
///
/// | kind         | type          | behavior                         |
/// |--------------|---------------|----------------------------------|
/// | `[f64]`      | `f64`         | scalar number, with `= default`  |
/// | `[opt f64]`  | `Option<f64>` | scalar number, optional          |
/// | `[u64]`      | `u64`         | non-negative int, with default   |
/// | `[opt u64]`  | `Option<u64>` | non-negative int, optional       |
/// | `[u32]`      | `u32`         | `u32`-ranged int, with default   |
/// | `[opt u32]`  | `Option<u32>` | `u32`-ranged int, optional       |
/// | `[bool]`     | `bool`        | true/false, with default         |
/// | `[opt bool]` | `Option<bool>`| true/false, optional             |
/// | `[str]`      | `String`      | raw token, with `= default`      |
/// | `[opt str]`  | `Option<String>` | raw token, optional           |
/// | `[req str]`  | `String`      | raw token, required              |
/// | `[list f64]` | `Vec<f64>`    | number list, empty when absent   |
/// | `[list u64]` | `Vec<u64>`    | int list, empty when absent      |
/// | `[list u32]` | `Vec<u32>`    | int list, empty when absent      |
/// | `[list str]` | `Vec<String>` | raw-token list, empty when absent|
///
/// A field may rename its spec key with `as "key"` (for keys that are
/// Rust keywords, like `macro`):
///
/// ```
/// use cimloop_spec::{reflect_section, ScenarioDoc};
///
/// reflect_section! {
///     /// The `!Noise` statistical non-ideality section.
///     pub struct NoiseView: "Noise" {
///         cell_variation: [f64] = 0.0, "per-cell conductance sigma";
///         read_noise: [f64] = 0.0, "column read-noise sigma";
///     }
/// }
///
/// let doc = ScenarioDoc::parse("!Scenario\nname: x\n!Noise\ncell_variation: 0.1\n").unwrap();
/// let v = NoiseView::decode(doc.section("Noise").unwrap()).unwrap();
/// assert_eq!(v.cell_variation, 0.1);
/// assert_eq!(v.read_noise, 0.0);
/// ```
#[macro_export]
macro_rules! reflect_section {
    (
        $(#[$smeta:meta])*
        $vis:vis struct $name:ident : $tag:literal {
            $(
                $fname:ident $(as $fkey:literal)? : [$($kind:tt)+] $(= $default:expr)? , $fdoc:literal ;
            )+
        }
    ) => {
        $(#[$smeta])*
        #[derive(Debug, Clone, PartialEq)]
        $vis struct $name {
            $( #[doc = $fdoc] pub $fname : $crate::reflect_field_ty!($($kind)+), )+
        }

        impl $crate::Reflect for $name {
            fn schema() -> &'static $crate::Schema {
                static SCHEMA: $crate::Schema = $crate::Schema {
                    tag: $tag,
                    fields: &[
                        $(
                            $crate::FieldDescriptor {
                                name: $crate::reflect_field_key!($fname $($fkey)?),
                                kind: $crate::reflect_field_kind!($($kind)+),
                                required: $crate::reflect_field_required!($($kind)+),
                                doc: $fdoc,
                            },
                        )+
                    ],
                };
                &SCHEMA
            }
        }

        impl $name {
            /// Decodes a section: validates it against the schema
            /// (unknown keys rejected with the nearest valid field
            /// named, line numbers preserved), then reads the typed
            /// fields.
            ///
            /// # Errors
            ///
            /// Returns [`cimloop_spec::SpecError::Parse`] on unknown
            /// keys, type mismatches, or missing required fields.
            $vis fn decode(section: &$crate::Section) -> Result<Self, $crate::SpecError> {
                <Self as $crate::Reflect>::schema().check(section)?;
                Ok(Self {
                    $(
                        $fname : $crate::reflect_field_decode!(
                            section,
                            $crate::reflect_field_key!($fname $($fkey)?),
                            [$($kind)+] $(($default))?
                        ),
                    )+
                })
            }
        }
    };
}

/// Internal: storage type for a [`crate::reflect_section!`] field kind.
#[doc(hidden)]
#[macro_export]
macro_rules! reflect_field_ty {
    (f64) => { f64 };
    (opt f64) => { Option<f64> };
    (u64) => { u64 };
    (opt u64) => { Option<u64> };
    (u32) => { u32 };
    (opt u32) => { Option<u32> };
    (bool) => { bool };
    (opt bool) => { Option<bool> };
    (str) => { String };
    (opt str) => { Option<String> };
    (req str) => { String };
    (list f64) => { Vec<f64> };
    (list u64) => { Vec<u64> };
    (list u32) => { Vec<u32> };
    (list str) => { Vec<String> };
}

/// Internal: [`FieldKind`] for a [`crate::reflect_section!`] field kind.
#[doc(hidden)]
#[macro_export]
macro_rules! reflect_field_kind {
    (f64) => {
        $crate::FieldKind::F64
    };
    (opt f64) => {
        $crate::FieldKind::F64
    };
    (u64) => {
        $crate::FieldKind::U64
    };
    (opt u64) => {
        $crate::FieldKind::U64
    };
    (u32) => {
        $crate::FieldKind::U32
    };
    (opt u32) => {
        $crate::FieldKind::U32
    };
    (bool) => {
        $crate::FieldKind::Bool
    };
    (opt bool) => {
        $crate::FieldKind::Bool
    };
    (str) => {
        $crate::FieldKind::Str
    };
    (opt str) => {
        $crate::FieldKind::Str
    };
    (req str) => {
        $crate::FieldKind::Str
    };
    (list f64) => {
        $crate::FieldKind::F64List
    };
    (list u64) => {
        $crate::FieldKind::U64List
    };
    (list u32) => {
        $crate::FieldKind::U32List
    };
    (list str) => {
        $crate::FieldKind::StrList
    };
}

/// Internal: required flag for a [`crate::reflect_section!`] field kind.
#[doc(hidden)]
#[macro_export]
macro_rules! reflect_field_required {
    (req str) => {
        true
    };
    ($($other:tt)+) => {
        false
    };
}

/// Internal: spec key for a [`crate::reflect_section!`] field (the `as`
/// rename when given, the field name otherwise).
#[doc(hidden)]
#[macro_export]
macro_rules! reflect_field_key {
    ($fname:ident) => {
        stringify!($fname)
    };
    ($fname:ident $fkey:literal) => {
        $fkey
    };
}

/// Internal: typed decode expression for a [`crate::reflect_section!`] field.
#[doc(hidden)]
#[macro_export]
macro_rules! reflect_field_decode {
    ($section:expr, $key:expr, [f64] ($default:expr)) => {
        $section.f64($key)?.unwrap_or($default)
    };
    ($section:expr, $key:expr, [opt f64]) => {
        $section.f64($key)?
    };
    ($section:expr, $key:expr, [u64] ($default:expr)) => {
        $section.u64_or($key, $default)?
    };
    ($section:expr, $key:expr, [opt u64]) => {
        $section.u64($key)?
    };
    ($section:expr, $key:expr, [u32] ($default:expr)) => {
        $section.u32($key)?.unwrap_or($default)
    };
    ($section:expr, $key:expr, [opt u32]) => {
        $section.u32($key)?
    };
    ($section:expr, $key:expr, [bool] ($default:expr)) => {
        $section.bool_or($key, $default)?
    };
    ($section:expr, $key:expr, [opt bool]) => {
        $section.bool($key)?
    };
    ($section:expr, $key:expr, [str] ($default:expr)) => {
        $section.str_or($key, $default).to_owned()
    };
    ($section:expr, $key:expr, [opt str]) => {
        $section.str($key).map(str::to_owned)
    };
    ($section:expr, $key:expr, [req str]) => {
        $section.require_str($key)?.to_owned()
    };
    ($section:expr, $key:expr, [list f64]) => {
        $section.f64_list($key)?.unwrap_or_default()
    };
    ($section:expr, $key:expr, [list u64]) => {
        $section.u64_list($key)?.unwrap_or_default()
    };
    ($section:expr, $key:expr, [list u32]) => {
        $section.u32_list($key)?.unwrap_or_default()
    };
    ($section:expr, $key:expr, [list str]) => {
        $section.str_list($key)?.unwrap_or_default()
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ScenarioDoc;

    crate::reflect_section! {
        /// Test view with one of each kind family.
        pub struct TestView: "Test" {
            sigma: [f64] = 0.5, "a float with a default";
            rows: [opt u64], "an optional integer";
            label as "tag_name": [req str], "a required renamed string";
            axes: [list u32], "an integer list";
            flags: [opt bool], "an optional bool";
        }
    }

    fn doc(body: &str) -> ScenarioDoc {
        ScenarioDoc::parse(&format!("!Scenario\nname: t\n!Test\n{body}")).unwrap()
    }

    #[test]
    fn decode_reads_typed_fields_and_defaults() {
        let d = doc("tag_name: hello\nrows: 128\naxes: [1, 2, 3]\n");
        let v = TestView::decode(d.section("Test").unwrap()).unwrap();
        assert_eq!(v.sigma, 0.5);
        assert_eq!(v.rows, Some(128));
        assert_eq!(v.label, "hello");
        assert_eq!(v.axes, vec![1, 2, 3]);
        assert_eq!(v.flags, None);
    }

    #[test]
    fn unknown_key_names_nearest_field_with_line() {
        let d = doc("tag_name: hello\nsigm: 0.2\n");
        let err = TestView::decode(d.section("Test").unwrap()).unwrap_err();
        match err {
            SpecError::Parse { line, message } => {
                assert_eq!(line, 5, "error must cite the typo'd entry's line");
                assert!(message.contains("sigm"), "{message}");
                assert!(message.contains("did you mean `sigma`"), "{message}");
            }
            other => panic!("expected a parse error, got {other:?}"),
        }
    }

    #[test]
    fn missing_required_field_cites_section() {
        let d = doc("sigma: 0.1\n");
        let err = TestView::decode(d.section("Test").unwrap()).unwrap_err();
        assert!(matches!(err, SpecError::Parse { line: 3, .. }), "{err:?}");
    }

    #[test]
    fn scalar_where_list_expected_is_a_shape_error() {
        let d = doc("tag_name: hi\naxes: 3\n");
        let err = TestView::decode(d.section("Test").unwrap()).unwrap_err();
        match err {
            SpecError::Parse { line, message } => {
                assert_eq!(line, 5);
                assert!(message.contains("[list]"), "{message}");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn list_where_scalar_expected_is_a_shape_error() {
        // Regression: `sigma: [1, 2]` used to slip through `Section::f64`
        // (which returns None for non-scalars) and silently decode to the
        // default. The schema walk rejects the shape.
        let d = doc("tag_name: hi\nsigma: [1, 2]\n");
        let err = TestView::decode(d.section("Test").unwrap()).unwrap_err();
        assert!(matches!(err, SpecError::Parse { line: 5, .. }), "{err:?}");
    }

    #[test]
    fn schema_exposes_descriptors() {
        let schema = <TestView as Reflect>::schema();
        assert_eq!(schema.tag, "Test");
        assert_eq!(schema.fields.len(), 5);
        let label = schema.field("tag_name").expect("renamed key");
        assert!(label.required);
        assert_eq!(label.kind, FieldKind::Str);
        assert!(schema.field("label").is_none(), "rust name is not the key");
    }

    #[test]
    fn nearest_rejects_far_candidates() {
        assert_eq!(nearest("sigm", &["sigma", "rows"]), Some("sigma"));
        assert_eq!(nearest("zzzzz", &["sigma", "rows"]), None);
    }

    #[test]
    fn diff_reports_exact_scalar_path() {
        let a = Value::Map(vec![
            ("x".to_owned(), Value::scalar("1")),
            (
                "ys".to_owned(),
                Value::List(vec![Value::scalar("0.10"), Value::scalar("0.2")]),
            ),
        ]);
        let mut b = a.clone();
        if let Value::Map(pairs) = &mut b {
            pairs[1].1 = Value::List(vec![Value::scalar("0.10"), Value::scalar("0.3")]);
        }
        let d = diff(&a, &b);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].path, "ys[1]");
        assert_eq!(d[0].left.as_deref(), Some("0.2"));
        assert_eq!(d[0].right.as_deref(), Some("0.3"));
    }

    #[test]
    fn diff_reports_added_and_removed_keys() {
        let a = Value::Map(vec![("x".to_owned(), Value::scalar("1"))]);
        let b = Value::Map(vec![("y".to_owned(), Value::scalar("2"))]);
        let d = diff(&a, &b);
        assert_eq!(d.len(), 2);
        assert_eq!(d[0].path, "x");
        assert!(d[0].right.is_none());
        assert_eq!(d[1].path, "y");
        assert!(d[1].left.is_none());
        assert!(render_diff(&d).contains("- x"), "{}", render_diff(&d));
    }

    #[test]
    fn identical_values_diff_empty() {
        let a = Value::Map(vec![("x".to_owned(), Value::scalar("0.10"))]);
        assert!(diff(&a, &a.clone()).is_empty());
    }
}
