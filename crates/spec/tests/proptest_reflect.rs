//! Property tests of the reflected spec data model: arbitrary scenario
//! documents survive the canonical yamlite writer byte-identically, the
//! JSON interchange codec is lossless in both directions, and the
//! structural differ pinpoints exactly the field that changed.

use cimloop_spec::{diff, ScenarioDoc, Value};
use proptest::prelude::*;

/// Identifier pool for keys and string-valued scalars. Deliberately free
/// of `true`/`false` (those are generated as boolean tokens) and of the
/// sentinel token the differ test plants.
const WORDS: [&str; 12] = [
    "alpha", "beta", "gamma", "delta", "rows", "cols", "vit", "snr", "macro_a", "wl", "x0", "k7",
];

/// Section-entry key pool (distinct from WORDS so a string scalar never
/// shadows a key, keeping generated documents easy to read in failures).
const KEYS: [&str; 10] = [
    "sparsity", "sigma", "bits", "count", "label", "mode", "scale", "period", "depth", "rate",
];

fn word(pool: &'static [&'static str]) -> BoxedStrategy<String> {
    (0..pool.len())
        .prop_map(move |i| pool[i].to_owned())
        .boxed()
}

/// A canonical scalar token: one the yamlite writer emits verbatim and
/// the parser reproduces exactly. Covers every kind the spec format
/// carries — integers, decimal floats, scientific notation, negatives,
/// booleans, and letter-leading strings.
fn arb_token() -> BoxedStrategy<String> {
    prop_oneof![
        (0u64..100_000).prop_map(|i| i.to_string()),
        (0u32..2000).prop_map(|i| format!("{i}.5")),
        Just("1e-9".to_owned()),
        Just("-0.5".to_owned()),
        Just("2.5e3".to_owned()),
        Just("true".to_owned()),
        Just("false".to_owned()),
        word(&WORDS),
    ]
    .boxed()
}

#[derive(Debug, Clone)]
enum EntryShape {
    Scalar(String),
    List(Vec<String>),
    Map(Vec<(String, String)>),
}

/// One section entry: `key: scalar`, `key: [list]`, or `key: { map }`.
fn arb_entry() -> BoxedStrategy<(String, EntryShape)> {
    let shape = prop_oneof![
        arb_token().prop_map(EntryShape::Scalar),
        arb_token().prop_map(EntryShape::Scalar),
        arb_token().prop_map(EntryShape::Scalar),
        prop::collection::vec(arb_token(), 1..4).prop_map(EntryShape::List),
        prop::collection::vec((word(&WORDS), arb_token()), 1..3)
            .prop_map(|pairs| EntryShape::Map(dedup_keys(pairs))),
    ];
    (word(&KEYS), shape).boxed()
}

fn dedup_keys<V>(pairs: Vec<(String, V)>) -> Vec<(String, V)> {
    let mut seen = std::collections::HashSet::new();
    pairs
        .into_iter()
        .filter(|(k, _)| seen.insert(k.clone()))
        .collect()
}

fn entry_text(key: &str, shape: &EntryShape) -> String {
    match shape {
        EntryShape::Scalar(token) => format!("{key}: {token}\n"),
        EntryShape::List(items) => format!("{key}: [{}]\n", items.join(", ")),
        EntryShape::Map(pairs) => {
            let body: Vec<String> = pairs.iter().map(|(k, v)| format!("{k}: {v}")).collect();
            format!("{key}: {{ {} }}\n", body.join(", "))
        }
    }
}

/// An arbitrary scenario document *text*: a `!Scenario` header plus a few
/// plain sections with arbitrary entries. Not necessarily canonical —
/// the properties parse it and compare canonical forms.
fn arb_document() -> BoxedStrategy<String> {
    let section = (
        prop_oneof![
            Just("Noise"),
            Just("Sweep"),
            Just("Workload"),
            Just("Extra")
        ],
        prop::collection::vec(arb_entry(), 1..5).prop_map(dedup_keys),
    );
    (
        prop::collection::vec(arb_entry(), 0..4).prop_map(dedup_keys),
        prop::collection::vec(section, 0..3),
    )
        .prop_map(|(scenario_entries, sections)| {
            let mut text = String::from("!Scenario\nname: prop\n");
            for (key, shape) in &scenario_entries {
                text.push_str(&entry_text(key, shape));
            }
            let mut used = std::collections::HashSet::new();
            for (tag, entries) in &sections {
                if !used.insert(*tag) {
                    continue; // duplicate plain tags would merge on lookup
                }
                text.push_str(&format!("!{tag}\n"));
                for (key, shape) in entries {
                    text.push_str(&entry_text(key, shape));
                }
            }
            text
        })
        .boxed()
}

/// Every scalar leaf path of a reflected value, in the differ's own
/// path syntax (maps join with `.`, root keys bare, lists index `[i]`).
fn scalar_paths(path: &str, value: &Value, out: &mut Vec<String>) {
    match value {
        Value::Scalar(_) => out.push(path.to_owned()),
        Value::List(items) => {
            for (i, item) in items.iter().enumerate() {
                scalar_paths(&format!("{path}[{i}]"), item, out);
            }
        }
        Value::Map(entries) => {
            for (key, item) in entries {
                let key_path = if path.is_empty() {
                    key.clone()
                } else {
                    format!("{path}.{key}")
                };
                scalar_paths(&key_path, item, out);
            }
        }
    }
}

/// Replaces the scalar at leaf index `target` (in traversal order) with
/// a sentinel token no generator produces, returning the mutated value.
fn mutate_scalar(value: &Value, target: usize, counter: &mut usize) -> Value {
    match value {
        Value::Scalar(_) => {
            let index = *counter;
            *counter += 1;
            if index == target {
                Value::scalar("999999999")
            } else {
                value.clone()
            }
        }
        Value::List(items) => Value::List(
            items
                .iter()
                .map(|item| mutate_scalar(item, target, counter))
                .collect(),
        ),
        Value::Map(entries) => Value::Map(
            entries
                .iter()
                .map(|(k, item)| (k.clone(), mutate_scalar(item, target, counter)))
                .collect(),
        ),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn canonical_write_is_a_byte_fixpoint(text in arb_document()) {
        let doc = ScenarioDoc::parse(&text).expect("generated document parses");
        let canonical = doc.write();
        let reparsed = ScenarioDoc::parse(&canonical).expect("canonical form parses");
        prop_assert_eq!(reparsed.write(), canonical, "write must be a fixpoint under parse");
    }

    #[test]
    fn yamlite_json_yamlite_is_byte_identical(text in arb_document()) {
        let doc = ScenarioDoc::parse(&text).expect("generated document parses");
        let canonical = doc.write();
        let json = doc.to_json();
        let back = ScenarioDoc::from_json(&json).expect("emitted JSON parses");
        prop_assert_eq!(back.write(), canonical, "yamlite -> JSON -> yamlite must be lossless");
    }

    #[test]
    fn json_yamlite_json_is_byte_identical(text in arb_document()) {
        let doc = ScenarioDoc::parse(&text).expect("generated document parses");
        let json = doc.to_json();
        let through_yamlite =
            ScenarioDoc::parse(&ScenarioDoc::from_json(&json).expect("JSON parses").write())
                .expect("canonical form parses");
        prop_assert_eq!(through_yamlite.to_json(), json, "JSON -> yamlite -> JSON must be lossless");
    }

    #[test]
    fn differ_reports_exactly_the_mutated_field(
        text in arb_document(),
        pick in any::<usize>(),
    ) {
        let doc = ScenarioDoc::parse(&text).expect("generated document parses");
        let value = doc.to_value();
        let mut paths = Vec::new();
        scalar_paths("", &value, &mut paths);
        // Every document has at least the scenario name scalar.
        prop_assert!(!paths.is_empty());
        let target = pick % paths.len();
        let mutated = mutate_scalar(&value, target, &mut 0);
        let entries = diff(&value, &mutated);
        prop_assert_eq!(entries.len(), 1, "exactly one field changed: {:?}", entries);
        prop_assert_eq!(&entries[0].path, &paths[target]);
        prop_assert_eq!(entries[0].right.as_deref(), Some("999999999"));
    }
}
