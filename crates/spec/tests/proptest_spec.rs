//! Property tests: arbitrary hierarchies round-trip through the yamlite
//! text format, and level flattening preserves structure.

use cimloop_spec::{yamlite, Component, Container, Hierarchy, Node, Reuse, Spatial, Tensor};
use proptest::prelude::*;

fn arb_reuse() -> impl Strategy<Value = Reuse> {
    prop_oneof![
        Just(Reuse::Temporal),
        Just(Reuse::Coalesce),
        Just(Reuse::NoCoalesce),
        Just(Reuse::Bypass),
    ]
}

/// The noise-spec attribute names the circuit library understands; the
/// round-trip suite exercises them explicitly so the accuracy model's
/// parameters provably survive spec serialization.
const NOISE_ATTRS: [&str; 3] = [
    "noise_variation_sigma",
    "noise_read_sigma",
    "noise_offset_sigma",
];

/// A float attribute value that round-trips through the text format
/// exactly: non-integral (so it re-parses as a float, not an int) and
/// shortest-repr printable.
fn arb_float_attr() -> impl Strategy<Value = f64> {
    (0u32..2000).prop_map(|i| f64::from(i) + 0.5)
}

fn arb_component(idx: usize) -> impl Strategy<Value = Component> {
    (
        arb_reuse(),
        arb_reuse(),
        arb_reuse(),
        1u64..8,
        1u64..8,
        prop::collection::vec(0usize..3, 0..3),
        0i64..1000,
        // Optional extra attributes of every scalar kind the format
        // carries: a noise-spec float, a boolean, and a string (leading
        // letter, so it can never re-parse as a number or bool).
        (any::<bool>(), 0usize..NOISE_ATTRS.len(), arb_float_attr()),
        (any::<bool>(), any::<bool>()),
        (any::<bool>(), 0u32..1000),
    )
        .prop_map(
            move |(ri, rw, ro, mx, my, spatial_reuse, attr, noise, flag, tag)| {
                let mut c = Component::new(format!("comp_{idx}"))
                    .with_class("free")
                    .with_reuse(Tensor::Inputs, ri)
                    .with_reuse(Tensor::Weights, rw)
                    .with_reuse(Tensor::Outputs, ro)
                    .with_spatial(Spatial::new(mx, my))
                    .with_attr("param", attr);
                if let (true, which, sigma) = noise {
                    c = c.with_attr(NOISE_ATTRS[which], sigma);
                }
                if let (true, value) = flag {
                    c = c.with_attr("slice_storage", value);
                }
                if let (true, i) = tag {
                    c = c.with_attr("device", format!("dev_{i}"));
                }
                for t in spatial_reuse {
                    c = c.with_spatial_reuse(Tensor::ALL[t]);
                }
                c
            },
        )
}

fn arb_hierarchy() -> impl Strategy<Value = Hierarchy> {
    prop::collection::vec((any::<bool>(), 1u64..6), 0..7).prop_flat_map(|kinds| {
        let mut comps: Vec<_> = kinds
            .iter()
            .enumerate()
            .map(|(i, &(is_container, mesh))| {
                if is_container {
                    Just(Node::Container(
                        Container::new(format!("cont_{i}")).with_spatial(Spatial::new(mesh, 1)),
                    ))
                    .boxed()
                } else {
                    arb_component(i).prop_map(Node::Component).boxed()
                }
            })
            .collect();
        // Guarantee at least one component (hierarchies of only containers
        // are rejected by validation).
        comps.push(arb_component(999).prop_map(Node::Component).boxed());
        comps.prop_map(|nodes| Hierarchy::from_nodes(nodes).expect("unique names, >=1 component"))
    })
}

#[test]
fn zero_mesh_is_a_parse_error_with_line_number() {
    // Regression: the parser used to accept `meshX: 0` (its own error
    // message notwithstanding) and defer to hierarchy validation, losing
    // the line number on the way.
    for spec in [
        "!Component\nname: a\nspatial: { meshX: 0 }",
        "!Component\nname: a\nspatial: { meshY: 0 }",
        "!Container\nname: a\nspatial: { meshX: 0, meshY: 2 }",
    ] {
        let err = cimloop_spec::Hierarchy::from_yamlite(spec).unwrap_err();
        assert!(
            matches!(err, cimloop_spec::SpecError::Parse { line: 3, .. }),
            "{spec:?} -> {err:?}"
        );
    }
}

#[test]
fn duplicate_name_and_class_keys_are_parse_errors() {
    // Regression: a second `name:`/`class:` used to silently win.
    let err = yamlite::parse("!Component\nname: a\nname: b").unwrap_err();
    assert!(
        matches!(err, cimloop_spec::SpecError::Parse { line: 3, .. }),
        "{err:?}"
    );
    let err = yamlite::parse("!Component\nname: a\nclass: x\nclass: y").unwrap_err();
    assert!(
        matches!(err, cimloop_spec::SpecError::Parse { line: 4, .. }),
        "{err:?}"
    );
    // One of each is still fine.
    assert!(yamlite::parse("!Component\nname: a\nclass: x").is_ok());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn parsed_hierarchies_never_contain_zero_fanout(h in arb_hierarchy()) {
        // Every node that survives parse/validation has fanout >= 1, so
        // downstream instance math can never multiply by zero.
        let parsed = Hierarchy::from_yamlite(&yamlite::write(&h)).expect("written spec parses");
        for node in parsed.nodes() {
            prop_assert!(node.spatial().fanout() >= 1);
        }
    }

    #[test]
    fn yamlite_round_trips(h in arb_hierarchy()) {
        let text = yamlite::write(&h);
        let parsed = Hierarchy::from_yamlite(&text).expect("written spec parses");
        prop_assert_eq!(&h, &parsed);
    }

    #[test]
    fn parse_serialize_parse_is_a_fixpoint(h in arb_hierarchy()) {
        // parse -> serialize -> parse equals the original parse: after one
        // round the serialized text is a fixpoint of the loop, so noise
        // attrs (and everything else) can be stored in specs losslessly.
        let first = Hierarchy::from_yamlite(&yamlite::write(&h)).expect("first parse");
        let text = yamlite::write(&first);
        let second = Hierarchy::from_yamlite(&text).expect("second parse");
        prop_assert_eq!(&first, &second);
        prop_assert_eq!(yamlite::write(&second), text);
    }

    #[test]
    fn levels_cover_all_nodes_in_order(h in arb_hierarchy()) {
        let levels = h.levels();
        prop_assert_eq!(levels.len(), h.len());
        for (i, level) in levels.iter().enumerate() {
            prop_assert_eq!(level.index(), i);
            prop_assert_eq!(level.name(), h.nodes()[i].name());
        }
    }

    #[test]
    fn outer_fanout_is_monotone_product(h in arb_hierarchy()) {
        let levels = h.levels();
        let mut expected = 1u64;
        for level in &levels {
            prop_assert_eq!(level.outer_fanout(), expected);
            expected = expected.saturating_mul(level.node().spatial().fanout());
        }
        prop_assert_eq!(expected, h.total_fanout());
    }

    #[test]
    fn noise_attributes_round_trip_with_exact_bits(
        sigma in arb_float_attr(),
        which in 0usize..NOISE_ATTRS.len(),
    ) {
        let text = format!(
            "!Component\nname: adc\nclass: sar_adc\nresolution: 8\n\
             no_coalesce: [Outputs]\n{}: {sigma}\n",
            NOISE_ATTRS[which]
        );
        let parsed = Hierarchy::from_yamlite(&text).expect("noise spec parses");
        let reparsed =
            Hierarchy::from_yamlite(&yamlite::write(&parsed)).expect("serialized spec parses");
        prop_assert_eq!(&parsed, &reparsed);
        prop_assert_eq!(
            reparsed
                .component("adc")
                .unwrap()
                .attributes()
                .float(NOISE_ATTRS[which]),
            Some(sigma)
        );
    }

    #[test]
    fn scenario_embeds_arbitrary_component_trees(h in arb_hierarchy()) {
        // Any valid yamlite tree can ride inline inside a scenario's
        // !Architecture section and parse back identically.
        let doc = format!(
            "!Scenario\nname: prop\nexperiment: evaluate\n!Architecture\n{}",
            yamlite::write(&h)
        );
        let parsed = cimloop_spec::ScenarioDoc::parse(&doc).expect("scenario parses");
        let arch = parsed.architecture().expect("architecture present");
        prop_assert_eq!(arch.hierarchy.as_ref().expect("inline tree"), &h);
    }

    #[test]
    fn nesting_preserves_both_parts(a in arb_hierarchy(), b in arb_hierarchy()) {
        // Rename b's nodes to avoid collisions, then nest.
        let renamed: Vec<Node> = b
            .nodes()
            .iter()
            .map(|n| match n {
                Node::Component(c) => {
                    let mut c2 = Component::new(format!("inner_{}", c.name())).with_class(c.class());
                    for t in Tensor::ALL {
                        c2 = c2.with_reuse(t, c.reuse(t));
                    }
                    Node::Component(c2.with_spatial(c.spatial()))
                }
                Node::Container(c) => Node::Container(
                    Container::new(format!("inner_{}", c.name())).with_spatial(c.spatial()),
                ),
            })
            .collect();
        let b2 = Hierarchy::from_nodes(renamed).expect("renamed nodes are valid");
        let nested = a.nest(&b2).expect("no collisions after rename");
        prop_assert_eq!(nested.len(), a.len() + b2.len());
        prop_assert_eq!(nested.nodes()[0].name(), a.nodes()[0].name());
    }
}
