//! The proof-of-value tests: the existing tree has zero unallowed
//! findings, and the committed baseline in `results/` matches what the
//! analyzer produces today. Together these make the static-analysis
//! contract part of tier-1: a PR that introduces a hazard (or silently
//! outgrows the baseline) fails `cargo test` before CI even gets to the
//! dedicated analyze job.

use std::fs;
use std::path::PathBuf;

use cimloop_analyze::{analyze_root, baseline_diff};

fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..")
}

#[test]
fn workspace_has_zero_unallowed_findings() {
    let report = analyze_root(&workspace_root()).expect("workspace scan");
    assert!(
        report.findings.is_empty(),
        "unallowed findings in the tree:\n{}",
        report.to_text()
    );
}

#[test]
fn committed_baseline_is_fresh() {
    let root = workspace_root();
    let report = analyze_root(&root).expect("workspace scan");
    let baseline_path = root.join("results/analyze_baseline.json");
    let baseline = fs::read_to_string(&baseline_path)
        .unwrap_or_else(|e| panic!("missing baseline {}: {e}", baseline_path.display()));
    let diff = baseline_diff(&report.to_json(), &baseline);
    assert!(
        diff.is_clean(),
        "results/analyze_baseline.json is stale — regenerate with \
         `cimloop analyze --write-baseline results/analyze_baseline.json`\n\
         new: {:#?}\nstale: {:#?}",
        diff.new,
        diff.stale
    );
}

#[test]
fn baseline_json_is_byte_identical_to_report() {
    let root = workspace_root();
    let report = analyze_root(&root).expect("workspace scan");
    let baseline_path = root.join("results/analyze_baseline.json");
    let baseline = fs::read_to_string(&baseline_path).expect("baseline readable");
    assert_eq!(
        report.to_json(),
        baseline,
        "baseline bytes drifted from the current report rendering"
    );
}
