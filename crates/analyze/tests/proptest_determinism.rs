//! Property test: the analyzer's JSON report is byte-identical no
//! matter what order the input files arrive in. The report feeds a
//! committed baseline that CI byte-diffs, so this is the same contract
//! the rest of the workspace holds for result TSVs.

use std::path::PathBuf;

use cimloop_analyze::{analyze_files, collect_files};
use proptest::prelude::*;

fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Fisher-Yates shuffle the collected file list with a seeded LCG
    /// and re-analyze: the JSON must not move by a byte.
    #[test]
    fn shuffled_file_order_is_byte_identical(seed in any::<u64>()) {
        let files = collect_files(&workspace_root()).expect("workspace scan");
        prop_assert!(!files.is_empty());
        let reference = analyze_files(&files).to_json();

        let mut shuffled = files;
        let mut state = seed | 1;
        for i in (1..shuffled.len()).rev() {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let j = ((state >> 33) as usize) % (i + 1);
            shuffled.swap(i, j);
        }
        let rerun = analyze_files(&shuffled).to_json();
        prop_assert_eq!(reference, rerun);
    }
}
