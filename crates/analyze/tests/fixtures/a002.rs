//! analyze-as: crates/core/src/fixture.rs
//! A002: a valid pragma that suppresses nothing is itself a finding —
//! including each unused rule of a multi-rule pragma.

fn clean() {
    // cimloop-analyze: allow(D002, reason = "nothing on the next line reads a clock") //~ A002
    let x = 1;
    drop(x);
}

fn partially_used() {
    // cimloop-analyze: allow(D001, D002, reason = "only the map is real") //~ A002
    let m: std::collections::HashMap<u8, u8> = std::collections::HashMap::new(); //~ allowed D001
    drop(m);
}
