//! analyze-as: crates/cli/src/serve.rs
//! Serve's sanctioned clock reads are suppressed by explicit reasoned
//! pragmas, not a builtin allowlist: only the pragma'd read is allowed,
//! and any other clock read in serve.rs still fires — even when its
//! line mentions a variable named `deadline`.

fn body_read() {
    // cimloop-analyze: allow(D002, reason = "body-read deadline; guards liveness only")
    let deadline = std::time::Instant::now(); //~ allowed D002
    let other = std::time::Instant::now(); //~ D002
    let stale_deadline = std::time::Instant::now(); //~ D002
    drop((deadline, other, stale_deadline));
}
