//! analyze-as: crates/cli/src/serve.rs
//! The builtin serve allowlist is line-precise: only `deadline` lines
//! in serve.rs are sanctioned; any other clock read there still fires.

fn body_read() {
    let deadline = std::time::Instant::now(); //~ allowed D002
    let other = std::time::Instant::now(); //~ D002
    drop((deadline, other));
}
