//! analyze-as: crates/spec/src/fixture.rs
//! D001 is scoped to report-producing crates; `spec` is not one, so the
//! same code that fires in `d001.rs` is clean here.

fn build() {
    let m: std::collections::HashMap<u8, u8> = std::collections::HashMap::new();
    drop(m);
}
