//! analyze-as: crates/core/src/fixture.rs
//! D002: wall-clock reads outside crates/bench.

fn clocks() {
    let t = std::time::Instant::now(); //~ D002
    let s = std::time::SystemTime::now(); //~ D002
    // cimloop-analyze: allow(D002, reason = "fixture: feeds a log label, never a result")
    let ok = std::time::Instant::now(); //~ allowed D002
    drop((t, s, ok));
}
