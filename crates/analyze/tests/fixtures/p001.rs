//! analyze-as: crates/cli/src/runners.rs
//! P001: unwrap()/expect() in panic-policy files. `unwrap_or*` is fine;
//! test code is skipped; a pragma suppresses with a reason.

fn run(v: Option<u8>) -> u8 {
    let a = v.unwrap(); //~ P001
    let b = v.expect("present"); //~ P001
    let c = v.unwrap_or(0);
    // cimloop-analyze: allow(P001, reason = "fixture: infallible by construction")
    let d = v.unwrap(); //~ allowed P001
    a + b + c + d
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_in_tests_is_fine() {
        assert_eq!(Some(1u8).unwrap(), 1);
    }
}
