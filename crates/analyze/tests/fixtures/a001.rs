//! analyze-as: crates/core/src/fixture.rs
//! A001: malformed pragmas are findings and never suppress. A missing
//! reason and an unknown rule ID both leave the underlying finding live.

fn clocks() {
    // cimloop-analyze: allow(D002) //~ A001
    let t = std::time::Instant::now(); //~ D002
    // cimloop-analyze: allow(Z999, reason = "typo'd rule id") //~ A001
    let s = std::time::SystemTime::now(); //~ D002
    drop((t, s));
}
