//! analyze-as: crates/system/src/fixture.rs
//! D003: float accumulation inside thread spawn/scope blocks. Integer
//! counters are exempt; a `chunk-order merge` marker near the scope
//! vouches for an ordered reduction; a pragma suppresses with a reason.

fn racy(chunks: &[Vec<f64>]) -> f64 {
    let mut n = 0usize;
    std::thread::scope(|s| {
        for chunk in chunks {
            s.spawn(|| {
                let mut local = 0.0;
                for v in chunk {
                    local += *v; //~ D003
                    n += 1;
                }
                local
            });
        }
    });
    0.0
}

fn ordered(chunks: &[Vec<f64>]) -> f64 {
    // Per-chunk partials, combined below in a chunk-order merge.
    let partials: Vec<f64> = std::thread::scope(|s| {
        let handles: Vec<_> = chunks
            .iter()
            .map(|c| s.spawn(move || c.iter().sum::<f64>()))
            .collect();
        handles.into_iter().map(|h| h.join().unwrap_or(0.0)).collect()
    });
    partials.iter().sum()
}

fn vouched(chunks: &[Vec<f64>]) {
    std::thread::scope(|s| {
        let mut x = 0.0;
        // cimloop-analyze: allow(D003, reason = "fixture: single-threaded scope, order is fixed")
        x += chunks.len() as f64; //~ allowed D003
        drop(x);
        drop(s);
    });
}
