//! analyze-as: crates/dse/src/fixture.rs
//! D001: unordered hash collections in a report-producing crate. The
//! `use` line is exempt (importing is not iterating); a valid pragma
//! moves the match to the allowed list; test code is skipped.

use std::collections::HashMap; // exempt: use line

fn build() {
    let m: HashMap<u8, u8> = HashMap::new(); //~ D001
    let s = std::collections::HashSet::<u8>::new(); //~ D001
    // cimloop-analyze: allow(D001, reason = "fixture: keyed lookups only, never iterated")
    let ok: HashMap<u8, u8> = HashMap::new(); //~ allowed D001
    drop((m, s, ok));
}

#[cfg(test)]
mod tests {
    #[test]
    fn hash_maps_in_tests_are_fine() {
        let m: std::collections::HashMap<u8, u8> = std::collections::HashMap::new();
        drop(m);
    }
}
