//! analyze-as: crates/bench/src/bin/fixture.rs
//! crates/bench is the sanctioned home for timing: D002 never fires
//! there.

fn timing() {
    let t = std::time::Instant::now();
    drop(t);
}
