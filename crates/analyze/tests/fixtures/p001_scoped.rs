//! analyze-as: crates/cli/src/resolve.rs
//! P001 is scoped to the panic-policy files; resolve.rs is not one, so
//! unwrap() here is left to clippy, not this rule.

fn run(v: Option<u8>) -> u8 {
    v.unwrap()
}
