//! analyze-as: crates/core/src/fixture.rs
//! L001: a mutex guard bound in the same statement as an eval*/compute*
//! call holds the lock across the computation. Splitting the statement
//! (compute first, then lock) is the fix; the rule follows a statement
//! across wrapped lines and anchors at its first line.

fn held_across_compute(m: &std::sync::Mutex<Vec<u8>>) {
    let _ = m.lock().map(|g| compute_row(&g)); //~ L001
}

fn held_multiline(m: &std::sync::Mutex<Vec<u8>>) {
    let _ = m //~ L001
        .lock()
        .map(|g| evaluate_all(&g));
}

fn split_is_clean(m: &std::sync::Mutex<Vec<u8>>) {
    let row = compute_row(&[]);
    let mut g = match m.lock() {
        Ok(g) => g,
        Err(e) => e.into_inner(),
    };
    g.push(row);
}

fn vouched(m: &std::sync::Mutex<Vec<u8>>) {
    // cimloop-analyze: allow(L001, reason = "fixture: guard scope ends on this statement")
    let _ = m.lock().map(|g| compute_row(&g)); //~ allowed L001
}

fn compute_row(_: &[u8]) -> u8 {
    0
}

fn evaluate_all(_: &[u8]) -> u8 {
    0
}
