//! Fixture tests: every rule must fire exactly where the fixture says it
//! does — no more, no less — and pragmas must move matches to the
//! allowed list. Fixtures live under `tests/fixtures/`; each starts with
//! an `analyze-as:` directive giving the synthetic workspace-relative
//! path the file is analyzed under (several rules are path-scoped).
//!
//! Expectation markers are trailing comments on the line they describe:
//! `//~ RULE` expects a finding, `//~ allowed RULE` an allowed entry.

use std::fs;
use std::path::PathBuf;

use cimloop_analyze::analyze_source;

/// Loads a fixture, runs the analyzer under the fixture's declared
/// path, and asserts the (line, rule) sets match the markers exactly.
fn check_fixture(name: &str) {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    let text =
        fs::read_to_string(&path).unwrap_or_else(|e| panic!("failed to read fixture {name}: {e}"));
    let first = text.lines().next().unwrap_or_default();
    let rel = first
        .strip_prefix("//! analyze-as: ")
        .unwrap_or_else(|| panic!("fixture {name} must start with `//! analyze-as: <path>`"))
        .trim()
        .to_owned();

    let mut want_findings: Vec<(usize, String)> = Vec::new();
    let mut want_allowed: Vec<(usize, String)> = Vec::new();
    for (idx, line) in text.lines().enumerate() {
        let Some(pos) = line.find("//~") else {
            continue;
        };
        let rest = line[pos + 3..].trim();
        let (allowed, rule) = match rest.strip_prefix("allowed ") {
            Some(rule) => (true, rule.trim()),
            None => (false, rest),
        };
        assert!(
            !rule.is_empty() && rule.chars().all(|c| c.is_ascii_alphanumeric()),
            "fixture {name} line {}: bad marker `{rest}`",
            idx + 1
        );
        if allowed {
            want_allowed.push((idx + 1, rule.to_owned()));
        } else {
            want_findings.push((idx + 1, rule.to_owned()));
        }
    }

    let (findings, allowed) = analyze_source(&rel, &text);
    let mut got_findings: Vec<(usize, String)> =
        findings.iter().map(|f| (f.line, f.rule.clone())).collect();
    let mut got_allowed: Vec<(usize, String)> =
        allowed.iter().map(|a| (a.line, a.rule.clone())).collect();
    got_findings.sort();
    got_allowed.sort();
    want_findings.sort();
    want_allowed.sort();
    assert_eq!(
        got_findings, want_findings,
        "fixture {name} (as {rel}): findings mismatch"
    );
    assert_eq!(
        got_allowed, want_allowed,
        "fixture {name} (as {rel}): allowed mismatch"
    );
}

#[test]
fn d001_fires_and_pragma_suppresses() {
    check_fixture("d001.rs");
}

#[test]
fn d001_is_scoped_to_report_crates() {
    check_fixture("d001_scoped.rs");
}

#[test]
fn d002_fires_and_pragma_suppresses() {
    check_fixture("d002.rs");
}

#[test]
fn d002_serve_requires_explicit_pragmas() {
    check_fixture("d002_serve.rs");
}

#[test]
fn d002_exempts_bench() {
    check_fixture("d002_bench.rs");
}

#[test]
fn d003_fires_with_exemptions_marker_and_pragma() {
    check_fixture("d003.rs");
}

#[test]
fn p001_fires_and_pragma_suppresses() {
    check_fixture("p001.rs");
}

#[test]
fn p001_is_scoped_to_panic_policy_files() {
    check_fixture("p001_scoped.rs");
}

#[test]
fn l001_fires_across_wrapped_statements() {
    check_fixture("l001.rs");
}

#[test]
fn a001_malformed_pragma_is_a_finding_and_never_suppresses() {
    check_fixture("a001.rs");
}

#[test]
fn a002_unused_pragma_is_a_finding() {
    check_fixture("a002.rs");
}

/// Every rule ID the analyzer knows must be exercised by at least one
/// fixture marker, so a new rule cannot ship untested.
#[test]
fn every_rule_has_fixture_coverage() {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures");
    let mut covered: Vec<String> = Vec::new();
    for entry in fs::read_dir(&dir).expect("fixtures directory") {
        let path = entry.expect("fixture entry").path();
        let text = fs::read_to_string(&path).expect("fixture readable");
        for line in text.lines() {
            if let Some(pos) = line.find("//~") {
                let rest = line[pos + 3..].trim();
                let rule = rest.strip_prefix("allowed ").unwrap_or(rest).trim();
                covered.push(rule.to_owned());
            }
        }
    }
    for rule in cimloop_analyze::ALL_RULES {
        assert!(
            covered.iter().any(|c| c == rule),
            "rule {rule} has no fixture marker"
        );
    }
}
