//! `cimloop-analyze`: a determinism & panic-policy static-analysis pass
//! over the CiMLoop workspace.
//!
//! The workspace's load-bearing contract is that results are
//! byte-identical across thread counts, cache capacities, shards, and
//! serve-vs-batch. That contract is enforced dynamically by goldens and
//! proptests — after a violation already exists. This crate enforces it
//! lexically at CI time: a hand-rolled scanner ([`lexer`]) blanks
//! comments and literals, and a small rule set ([`rules`]) flags the
//! hazard patterns that have historically broken reproducibility in
//! Timeloop/Accelergy-class tools: unordered hash iteration feeding
//! reports (D001), wall-clock reads in result paths (D002), unordered
//! float reduction under threads (D003), panics in the serve/evaluator
//! path (P001), and computation under a held lock (L001).
//!
//! Output is sorted by (file, line, rule) and byte-deterministic under
//! input-order shuffling; findings can be suppressed with
//! `cimloop-analyze` allow pragmas — `allow(RULE, reason = "...")` after
//! the tool name and a colon in a comment — which are themselves audited
//! (A001/A002). See `docs/static-analysis.md`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::dbg_macro)]

pub mod lexer;
pub mod rules;

use std::collections::BTreeSet;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

pub use rules::{explain, ALLOWABLE_RULES, ALL_RULES};

/// One rule violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule ID (e.g. `D001`).
    pub rule: String,
    /// Workspace-relative path, forward slashes.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// What was matched and why it matters.
    pub message: String,
    /// One-line fix hint.
    pub hint: String,
}

/// One suppressed match: a finding a reasoned allow pragma covers.
/// Recorded in reports (and the committed baseline) as an audit trail.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Allowed {
    /// Rule ID that would have fired.
    pub rule: String,
    /// Workspace-relative path, forward slashes.
    pub file: String,
    /// 1-based line number of the suppressed match.
    pub line: usize,
    /// The pragma's reason.
    pub reason: String,
}

/// A full analysis report over a set of files.
#[derive(Debug, Clone, Default)]
pub struct Report {
    /// Unsuppressed violations, sorted by (file, line, rule).
    pub findings: Vec<Finding>,
    /// Suppressed matches, sorted by (file, line, rule).
    pub allowed: Vec<Allowed>,
}

/// Analyzes one file's source text under its workspace-relative path
/// (the path scopes several rules).
pub fn analyze_source(rel_path: &str, text: &str) -> (Vec<Finding>, Vec<Allowed>) {
    let lines = lexer::scan(text);
    rules::analyze_lines(rel_path, &lines)
}

/// Analyzes a set of `(relative path, contents)` pairs. Input order is
/// irrelevant: files are sorted internally, so the report is
/// byte-deterministic under shuffling.
pub fn analyze_files(files: &[(String, String)]) -> Report {
    let mut order: Vec<usize> = (0..files.len()).collect();
    order.sort_by(|&a, &b| files[a].0.cmp(&files[b].0));
    let mut report = Report::default();
    for idx in order {
        let (rel, text) = &files[idx];
        let (f, a) = analyze_source(rel, text);
        report.findings.extend(f);
        report.allowed.extend(a);
    }
    report
        .findings
        .sort_by(|x, y| (&x.file, x.line, &x.rule).cmp(&(&y.file, y.line, &y.rule)));
    report
        .allowed
        .sort_by(|x, y| (&x.file, x.line, &x.rule).cmp(&(&y.file, y.line, &y.rule)));
    report
}

/// Collects the workspace's first-party Rust sources under `root`: the
/// facade `src/` plus every `crates/*/src/` tree. `vendor/`, `target/`,
/// and test/fixture directories are excluded by construction.
pub fn collect_files(root: &Path) -> io::Result<Vec<(String, String)>> {
    let mut out = Vec::new();
    walk(&root.join("src"), "src", &mut out)?;
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        let mut names: Vec<String> = Vec::new();
        for entry in fs::read_dir(&crates_dir)? {
            let entry = entry?;
            if entry.path().is_dir() {
                names.push(entry.file_name().to_string_lossy().into_owned());
            }
        }
        names.sort();
        for name in names {
            let rel = format!("crates/{name}/src");
            walk(&crates_dir.join(&name).join("src"), &rel, &mut out)?;
        }
    }
    out.sort_by(|a, b| a.0.cmp(&b.0));
    Ok(out)
}

fn walk(dir: &Path, rel_prefix: &str, out: &mut Vec<(String, String)>) -> io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    let mut entries: Vec<(String, PathBuf)> = Vec::new();
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        entries.push((
            entry.file_name().to_string_lossy().into_owned(),
            entry.path(),
        ));
    }
    entries.sort_by(|a, b| a.0.cmp(&b.0));
    for (name, path) in entries {
        let rel = format!("{rel_prefix}/{name}");
        if path.is_dir() {
            walk(&path, &rel, out)?;
        } else if name.ends_with(".rs") {
            out.push((rel, fs::read_to_string(&path)?));
        }
    }
    Ok(())
}

/// Collects and analyzes the workspace rooted at `root`.
pub fn analyze_root(root: &Path) -> io::Result<Report> {
    Ok(analyze_files(&collect_files(root)?))
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

impl Report {
    /// Renders the report as deterministic JSON: one entry object per
    /// line, sections sorted, stable byte-for-byte across runs. The
    /// committed baseline is exactly this rendering.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n  \"schema\": \"cimloop-analyze/v1\",\n  \"findings\": [\n");
        let findings: Vec<String> = self
            .findings
            .iter()
            .map(|f| {
                format!(
                    "    {{\"rule\": \"{}\", \"file\": \"{}\", \"line\": {}, \"message\": \"{}\", \"hint\": \"{}\"}}",
                    json_escape(&f.rule),
                    json_escape(&f.file),
                    f.line,
                    json_escape(&f.message),
                    json_escape(&f.hint)
                )
            })
            .collect();
        out.push_str(&findings.join(",\n"));
        if !findings.is_empty() {
            out.push('\n');
        }
        out.push_str("  ],\n  \"allowed\": [\n");
        let allowed: Vec<String> = self
            .allowed
            .iter()
            .map(|a| {
                format!(
                    "    {{\"rule\": \"{}\", \"file\": \"{}\", \"line\": {}, \"reason\": \"{}\"}}",
                    json_escape(&a.rule),
                    json_escape(&a.file),
                    a.line,
                    json_escape(&a.reason)
                )
            })
            .collect();
        out.push_str(&allowed.join(",\n"));
        if !allowed.is_empty() {
            out.push('\n');
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Renders the report as human-readable text, one finding per
    /// paragraph, same (file, line, rule) order as the JSON.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            out.push_str(&format!(
                "{} {}:{}  {}\n      hint: {}\n",
                f.rule, f.file, f.line, f.message, f.hint
            ));
        }
        for a in &self.allowed {
            out.push_str(&format!(
                "allowed {} {}:{}  ({})\n",
                a.rule, a.file, a.line, a.reason
            ));
        }
        out.push_str(&format!(
            "{} finding(s), {} allowed\n",
            self.findings.len(),
            self.allowed.len()
        ));
        out
    }
}

/// Difference between a current report and a committed baseline,
/// compared entry-by-entry on the JSON entry lines.
#[derive(Debug, Default)]
pub struct BaselineDiff {
    /// Entries produced now but absent from the baseline.
    pub new: Vec<String>,
    /// Baseline entries no longer produced (stale — regenerate).
    pub stale: Vec<String>,
}

impl BaselineDiff {
    /// True when current output and baseline agree exactly.
    pub fn is_clean(&self) -> bool {
        self.new.is_empty() && self.stale.is_empty()
    }
}

fn entry_lines(json: &str) -> BTreeSet<String> {
    json.lines()
        .map(str::trim)
        .filter(|l| l.starts_with("{\"rule\""))
        .map(|l| l.trim_end_matches(',').to_owned())
        .collect()
}

/// Compares a current JSON report against a baseline JSON report.
pub fn baseline_diff(current_json: &str, baseline_json: &str) -> BaselineDiff {
    let current = entry_lines(current_json);
    let baseline = entry_lines(baseline_json);
    BaselineDiff {
        new: current.difference(&baseline).cloned().collect(),
        stale: baseline.difference(&current).cloned().collect(),
    }
}

/// Walks up from the current directory to the nearest `Cargo.toml`
/// declaring a `[workspace]`; falls back to `.`.
fn find_workspace_root() -> PathBuf {
    let mut dir = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return dir;
            }
        }
        if !dir.pop() {
            return PathBuf::from(".");
        }
    }
}

const USAGE: &str = "\
cimloop-analyze: determinism & panic-policy static analysis

USAGE:
  cimloop-analyze [ROOT] [--format text|json] [--out FILE]
                  [--baseline FILE] [--write-baseline FILE]
  cimloop-analyze --explain RULE

OPTIONS:
  ROOT                   workspace root (default: nearest [workspace] Cargo.toml)
  --format text|json     report format (default: text)
  --out FILE             write the report to FILE instead of stdout
  --baseline FILE        compare against a committed baseline; exit 1 on
                         any new or stale entry
  --write-baseline FILE  write the current JSON report as the new baseline
  --explain RULE         print the contract a rule guards (D001, D002,
                         D003, P001, L001, A001, A002)

EXIT CODES:
  0  no findings (or report matches the baseline exactly)
  1  findings present, or baseline mismatch
  2  usage error
";

/// Runs the analyzer CLI. Shared by the standalone `cimloop-analyze`
/// binary and the `cimloop analyze` subcommand; returns the exit code.
pub fn run_cli(args: &[String]) -> u8 {
    let mut root: Option<PathBuf> = None;
    let mut format = "text".to_owned();
    let mut out_file: Option<PathBuf> = None;
    let mut baseline: Option<PathBuf> = None;
    let mut write_baseline: Option<PathBuf> = None;
    let mut i = 0usize;
    while i < args.len() {
        let arg = args[i].as_str();
        let take_value = |i: &mut usize| -> Option<String> {
            *i += 1;
            args.get(*i).cloned()
        };
        match arg {
            "--help" | "-h" => {
                println!("{USAGE}");
                return 0;
            }
            "--explain" => {
                let Some(rule) = take_value(&mut i) else {
                    eprintln!("--explain requires a rule ID\n\n{USAGE}");
                    return 2;
                };
                match explain(&rule) {
                    Some(text) => {
                        println!("{text}");
                        return 0;
                    }
                    None => {
                        eprintln!("unknown rule `{rule}` (known: {})", ALL_RULES.join(", "));
                        return 2;
                    }
                }
            }
            "--format" => {
                let Some(v) = take_value(&mut i) else {
                    eprintln!("--format requires a value\n\n{USAGE}");
                    return 2;
                };
                if v != "text" && v != "json" {
                    eprintln!("--format must be `text` or `json`, got `{v}`");
                    return 2;
                }
                format = v;
            }
            "--out" => {
                let Some(v) = take_value(&mut i) else {
                    eprintln!("--out requires a path\n\n{USAGE}");
                    return 2;
                };
                out_file = Some(PathBuf::from(v));
            }
            "--baseline" => {
                let Some(v) = take_value(&mut i) else {
                    eprintln!("--baseline requires a path\n\n{USAGE}");
                    return 2;
                };
                baseline = Some(PathBuf::from(v));
            }
            "--write-baseline" => {
                let Some(v) = take_value(&mut i) else {
                    eprintln!("--write-baseline requires a path\n\n{USAGE}");
                    return 2;
                };
                write_baseline = Some(PathBuf::from(v));
            }
            _ if arg.starts_with('-') => {
                eprintln!("unknown option `{arg}`\n\n{USAGE}");
                return 2;
            }
            _ if root.is_none() => root = Some(PathBuf::from(arg)),
            _ => {
                eprintln!("unexpected argument `{arg}`\n\n{USAGE}");
                return 2;
            }
        }
        i += 1;
    }

    let root = root.unwrap_or_else(find_workspace_root);
    let report = match analyze_root(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("failed to scan {}: {e}", root.display());
            return 2;
        }
    };
    let json = report.to_json();

    if let Some(path) = write_baseline {
        if let Err(e) = fs::write(&path, &json) {
            eprintln!("failed to write baseline {}: {e}", path.display());
            return 2;
        }
        println!(
            "wrote baseline {} ({} finding(s), {} allowed)",
            path.display(),
            report.findings.len(),
            report.allowed.len()
        );
        return 0;
    }

    let rendered = if format == "json" {
        json.clone()
    } else {
        report.to_text()
    };
    match &out_file {
        Some(path) => {
            if let Err(e) = fs::write(path, &rendered) {
                eprintln!("failed to write {}: {e}", path.display());
                return 2;
            }
            println!(
                "wrote {} ({} finding(s), {} allowed)",
                path.display(),
                report.findings.len(),
                report.allowed.len()
            );
        }
        None => print!("{rendered}"),
    }

    if let Some(path) = baseline {
        let baseline_text = match fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("failed to read baseline {}: {e}", path.display());
                return 2;
            }
        };
        let diff = baseline_diff(&json, &baseline_text);
        if diff.is_clean() {
            println!("baseline {}: OK", path.display());
            return 0;
        }
        for entry in &diff.new {
            eprintln!("NEW (not in baseline): {entry}");
        }
        for entry in &diff.stale {
            eprintln!("STALE (in baseline, no longer produced): {entry}");
        }
        eprintln!(
            "baseline {} out of date: {} new, {} stale — fix the findings or regenerate with --write-baseline",
            path.display(),
            diff.new.len(),
            diff.stale.len()
        );
        return 1;
    }

    u8::from(!report.findings.is_empty())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_is_stable_and_escaped() {
        let report = Report {
            findings: vec![Finding {
                rule: "D001".into(),
                file: "crates/x/src/lib.rs".into(),
                line: 3,
                message: "quote \" and backslash \\".into(),
                hint: "h".into(),
            }],
            allowed: vec![],
        };
        let json = report.to_json();
        assert!(json.contains("\\\""));
        assert!(json.contains("\\\\"));
        assert_eq!(json, report.to_json());
    }

    #[test]
    fn baseline_diff_classifies_new_and_stale() {
        let a = "{\n  \"findings\": [\n    {\"rule\": \"D001\", \"file\": \"a\", \"line\": 1, \"message\": \"m\", \"hint\": \"h\"}\n  ],\n  \"allowed\": [\n  ]\n}\n";
        let b = "{\n  \"findings\": [\n    {\"rule\": \"D002\", \"file\": \"b\", \"line\": 2, \"message\": \"m\", \"hint\": \"h\"}\n  ],\n  \"allowed\": [\n  ]\n}\n";
        let diff = baseline_diff(a, b);
        assert_eq!(diff.new.len(), 1);
        assert_eq!(diff.stale.len(), 1);
        assert!(baseline_diff(a, a).is_clean());
    }

    #[test]
    fn explain_covers_every_rule() {
        for rule in ALL_RULES {
            assert!(explain(rule).is_some(), "missing explanation for {rule}");
        }
        assert!(explain("Z999").is_none());
    }
}
