//! The rule set: each rule encodes one invariant this workspace relies
//! on (see `docs/static-analysis.md` for the catalog). Rules operate on
//! the blanked code / comment channels from [`crate::lexer`], skip
//! `#[cfg(test)]` / `#[test]` regions, and honour allow pragmas
//! (`allow(RULE, reason = "...")` after the tool name and a colon in a
//! comment; `parse_pragma` has the grammar).

use crate::lexer::{find_ident, has_ident, is_ident_char, SourceLine};
use crate::{Allowed, Finding};

/// Crates whose output feeds reports, TSVs, or goldens — unordered hash
/// iteration there can reach bytes the CI diffs (rule D001).
const D001_CRATES: [&str; 6] = ["analyze", "bench", "cli", "core", "dse", "system"];

/// Files covered by the PR-6 panic policy (rule P001): a panic here
/// either kills the serve daemon mid-request or turns a bad spec into a
/// crash instead of a `CliError`.
const P001_FILES: [&str; 5] = [
    "crates/cli/src/serve.rs",
    "crates/cli/src/runners.rs",
    "crates/cli/src/schema.rs",
    "crates/core/src/evaluator.rs",
    "crates/core/src/cache.rs",
];

/// Rule IDs a pragma may name. A001/A002 guard the pragma mechanism
/// itself and cannot be suppressed.
pub const ALLOWABLE_RULES: [&str; 5] = ["D001", "D002", "D003", "P001", "L001"];

/// All rule IDs, for `--explain` and fixture coverage checks.
pub const ALL_RULES: [&str; 7] = ["D001", "D002", "D003", "P001", "L001", "A001", "A002"];

/// The contract each rule guards, printed by `--explain <rule>`.
pub fn explain(rule: &str) -> Option<&'static str> {
    Some(match rule {
        "D001" => {
            "D001 - unordered hash collections in report-producing crates\n\
             \n\
             Contract: every report, TSV, golden, and DSE front must be\n\
             byte-identical across runs, thread counts, and shards.\n\
             HashMap/HashSet iteration order is randomized per process, so\n\
             any such collection in the analyze/bench/cli/core/dse/system\n\
             crates is one `for` loop away from nondeterministic output.\n\
             Fix: use BTreeMap/BTreeSet, or sort before emitting. If the\n\
             iteration order provably cannot reach output (e.g. a min-scan\n\
             over unique keys), suppress with\n\
             `// cimloop-analyze: allow(D001, reason = \"...\")`."
        }
        "D002" => {
            "D002 - wall-clock reads outside crates/bench\n\
             \n\
             Contract: results depend only on the spec, never on when the\n\
             run happened. `Instant::now()` / `SystemTime` in a result path\n\
             makes output time-dependent and unreproducible. Timing belongs\n\
             in crates/bench; the one sanctioned exception is the serve\n\
             body-read deadline in crates/cli/src/serve.rs (connection\n\
             liveness, cannot reach results), which carries explicit\n\
             `allow(D002, reason = ...)` pragmas on its two clock reads so\n\
             the suppression stays visible and audited in place."
        }
        "D003" => {
            "D003 - float accumulation inside thread spawn/scope blocks\n\
             \n\
             Contract: parallel evaluation must reduce in a fixed order.\n\
             Float addition is not associative, so `+=` on floats (or\n\
             sum::<f64>/fold(0.0..)) inside a thread::spawn/thread::scope\n\
             block can make totals depend on thread interleaving. Fix:\n\
             collect per-chunk partials and combine them after the scope in\n\
             chunk order, marking the reduction with a `chunk-order merge`\n\
             comment near the scope (the marker suppresses this rule).\n\
             Integer counters (`n += 1`) are exempt."
        }
        "P001" => {
            "P001 - unwrap()/expect() in panic-policy files\n\
             \n\
             Contract (PR 6): a failing request must never kill the serve\n\
             daemon, and a malformed spec must surface as a CliError, not a\n\
             crash. Non-test code in serve.rs, runners.rs, schema.rs,\n\
             evaluator.rs, and cache.rs must propagate errors (`?`,\n\
             `ok_or_else`, poison recovery via PoisonError::into_inner)\n\
             instead of calling .unwrap()/.expect()."
        }
        "L001" => {
            "L001 - evaluation under a held mutex guard\n\
             \n\
             Contract: compute outside the lock. Binding a mutex guard in\n\
             the same statement as an eval*/compute* call keeps the lock\n\
             held across the computation, serializing workers and inviting\n\
             deadlock through re-entrant cache lookups. Fix: compute into a\n\
             local first, then take the lock only to insert/read."
        }
        "A001" => {
            "A001 - malformed allow pragma\n\
             \n\
             A `cimloop-analyze: allow(...)` pragma must name known rule\n\
             IDs and carry a non-empty `reason = \"...\"`. A malformed\n\
             pragma never suppresses anything; it is reported so a typo\n\
             cannot silently disable a rule."
        }
        "A002" => {
            "A002 - unused allow pragma\n\
             \n\
             A valid pragma whose rule did not fire on its target line is\n\
             dead: either the hazard was fixed (delete the pragma) or the\n\
             pragma is attached to the wrong line (move it). Unused\n\
             suppressions rot into blanket permissions, so they are\n\
             findings."
        }
        _ => return None,
    })
}

fn hint_for(rule: &str) -> &'static str {
    match rule {
        "D001" => "use BTreeMap/BTreeSet or a sorted merge; allow(D001, reason = ...) only if order cannot reach output",
        "D002" => "move timing into crates/bench or pass it in as data; results must not depend on the clock",
        "D003" => "collect per-chunk partials, merge after the scope in chunk order, and mark it with a `chunk-order merge` comment",
        "P001" => "propagate with `?`/ok_or_else, or recover lock poison via PoisonError::into_inner",
        "L001" => "compute into a local first; take the lock only to insert or read",
        "A001" => "write `// cimloop-analyze: allow(RULE, reason = \"why this is safe\")`",
        "A002" => "delete the pragma or move it to the line the rule fires on",
        _ => "",
    }
}

/// Whether attribute text (the part between `#[` and `]`) gates its item
/// to test builds: a path whose last segment is `test` (`#[test]`,
/// `#[tokio::test]`) or a `cfg(...)` whose predicate mentions `test` as
/// an identifier (`#[cfg(test)]`, `#[cfg( test )]`,
/// `#[cfg(all(test, feature = "x"))]`). `cfg(not(test))` is production
/// code and is NOT a test attribute. Operates on the blanked code
/// channel, so `test` inside a string (e.g. `feature = "test"`) never
/// matches.
fn is_test_attr(inner: &str) -> bool {
    let inner = inner.trim();
    let (path, args) = match inner.find('(') {
        Some(p) => (inner[..p].trim_end(), Some(&inner[p + 1..])),
        None => (inner, None),
    };
    if path.rsplit("::").next().unwrap_or(path).trim() == "test" {
        return true;
    }
    if path != "cfg" {
        return false;
    }
    let Some(pos) = args.and_then(|a| find_ident(a, "test")) else {
        return false;
    };
    let args = args.unwrap_or_default();
    // `not(test)` inverts the gate: the body is the production build.
    !args[..pos].trim_end().ends_with("not(")
}

/// Byte offset just past the first test-gating attribute on `code`, or
/// None. The attribute must open and close on this line.
fn test_attr_end(code: &str) -> Option<usize> {
    let mut from = 0;
    while let Some(p) = code[from..].find("#[") {
        let inner_start = from + p + 2;
        let mut depth = 1i32;
        let mut close = None;
        for (bi, c) in code[inner_start..].char_indices() {
            match c {
                '[' => depth += 1,
                ']' => {
                    depth -= 1;
                    if depth == 0 {
                        close = Some(inner_start + bi);
                        break;
                    }
                }
                _ => {}
            }
        }
        let close = close?;
        if is_test_attr(&code[inner_start..close]) {
            return Some(close + 1);
        }
        from = close + 1;
    }
    None
}

/// Marks every line inside a test-gated region (`#[cfg(test)]`,
/// `#[test]`, and tolerant variants — see [`is_test_attr`]). A region
/// spans from the attribute to the matching close brace of the item it
/// annotates (or to the first `;` at depth 0 for brace-less items).
pub fn test_mask(lines: &[SourceLine]) -> Vec<bool> {
    let mut mask = vec![false; lines.len()];
    let mut i = 0;
    while i < lines.len() {
        if mask[i] {
            i += 1;
            continue;
        }
        let code = &lines[i].code;
        if let Some(col) = test_attr_end(code) {
            let end = region_end(lines, i, col);
            let last = end.min(lines.len() - 1);
            for m in mask.iter_mut().take(last + 1).skip(i) {
                *m = true;
            }
            i = last + 1;
        } else {
            i += 1;
        }
    }
    mask
}

/// Walks blanked code from (`start_line`, byte `start_col`) to the end of
/// the annotated item: the matching `}` once a brace was seen, or the
/// first `;` at depth 0 before any brace.
fn region_end(lines: &[SourceLine], start_line: usize, start_col: usize) -> usize {
    let mut depth = 0i64;
    let mut seen_brace = false;
    for (li, line) in lines.iter().enumerate().skip(start_line) {
        let from = if li == start_line { start_col } else { 0 };
        for (bi, c) in line.code.char_indices() {
            if bi < from {
                continue;
            }
            match c {
                '{' => {
                    depth += 1;
                    seen_brace = true;
                }
                '}' => {
                    depth -= 1;
                    if seen_brace && depth <= 0 {
                        return li;
                    }
                }
                ';' if !seen_brace && depth == 0 => return li,
                _ => {}
            }
        }
    }
    lines.len().saturating_sub(1)
}

/// One parsed allow pragma.
struct Pragma {
    /// 0-based line the pragma comment sits on.
    line: usize,
    /// 0-based line the pragma applies to (same line for trailing
    /// pragmas, next code line for standalone ones).
    target: Option<usize>,
    /// Rule IDs it names (valid pragmas only).
    rules: Vec<String>,
    /// The required reason.
    reason: String,
    /// Which of `rules` suppressed a finding (parallel to `rules`).
    used: Vec<bool>,
}

/// Parse result for one pragma comment.
enum ParsedPragma {
    Valid { rules: Vec<String>, reason: String },
    Malformed(String),
}

/// Parses an allow pragma out of a comment: the tool name and a colon,
/// then `allow(RULE[, RULE...], reason = "...")`. Returns None when the
/// comment holds no pragma at all.
fn parse_pragma(comment: &str) -> Option<ParsedPragma> {
    let key = "cimloop-analyze:";
    let at = comment.find(key)?;
    let rest = comment[at + key.len()..].trim_start();
    let Some(body) = rest.strip_prefix("allow") else {
        return Some(ParsedPragma::Malformed(
            "expected `allow(...)` after `cimloop-analyze:`".to_owned(),
        ));
    };
    let Some(body) = body.trim_start().strip_prefix('(') else {
        return Some(ParsedPragma::Malformed(
            "expected `(` after `allow`".to_owned(),
        ));
    };
    let mut rules = Vec::new();
    let mut reason: Option<String> = None;
    let chars: Vec<char> = body.chars().collect();
    let mut i = 0usize;
    loop {
        while i < chars.len() && chars[i].is_whitespace() {
            i += 1;
        }
        if i >= chars.len() {
            return Some(ParsedPragma::Malformed("unterminated pragma".to_owned()));
        }
        if chars[i] == ')' {
            break;
        }
        // A `reason = "..."` clause or a rule ID.
        let word_start = i;
        while i < chars.len() && is_ident_char(chars[i]) {
            i += 1;
        }
        let word: String = chars[word_start..i].iter().collect();
        while i < chars.len() && chars[i].is_whitespace() {
            i += 1;
        }
        if word == "reason" {
            if i >= chars.len() || chars[i] != '=' {
                return Some(ParsedPragma::Malformed(
                    "expected `=` after `reason`".to_owned(),
                ));
            }
            i += 1;
            while i < chars.len() && chars[i].is_whitespace() {
                i += 1;
            }
            if i >= chars.len() || chars[i] != '"' {
                return Some(ParsedPragma::Malformed(
                    "expected a quoted string after `reason =`".to_owned(),
                ));
            }
            i += 1;
            let text_start = i;
            while i < chars.len() && chars[i] != '"' {
                i += 1;
            }
            if i >= chars.len() {
                return Some(ParsedPragma::Malformed(
                    "unterminated reason string".to_owned(),
                ));
            }
            reason = Some(chars[text_start..i].iter().collect());
            i += 1;
        } else if word.is_empty() {
            return Some(ParsedPragma::Malformed(format!(
                "unexpected character `{}` in pragma",
                chars[i]
            )));
        } else if ALLOWABLE_RULES.contains(&word.as_str()) {
            rules.push(word);
        } else {
            return Some(ParsedPragma::Malformed(format!(
                "unknown rule `{word}` (allowed: {})",
                ALLOWABLE_RULES.join(", ")
            )));
        }
        while i < chars.len() && chars[i].is_whitespace() {
            i += 1;
        }
        if i < chars.len() && chars[i] == ',' {
            i += 1;
        }
    }
    if rules.is_empty() {
        return Some(ParsedPragma::Malformed(
            "pragma names no rule IDs".to_owned(),
        ));
    }
    match reason {
        Some(r) if !r.trim().is_empty() => Some(ParsedPragma::Valid { rules, reason: r }),
        Some(_) => Some(ParsedPragma::Malformed("reason is empty".to_owned())),
        None => Some(ParsedPragma::Malformed(
            "missing required `reason = \"...\"`".to_owned(),
        )),
    }
}

/// A finding before pragma filtering: (rule, 0-based line, message).
struct Raw {
    rule: &'static str,
    line: usize,
    message: String,
}

/// Crate a workspace-relative path belongs to (`crates/foo/...` -> `foo`;
/// the root `src/` facade is `cimloop`).
fn crate_of(rel: &str) -> &str {
    match rel.strip_prefix("crates/") {
        Some(rest) => rest.split('/').next().unwrap_or(""),
        None => "cimloop",
    }
}

/// Runs every rule over one file and resolves pragmas. Returns findings
/// and allowed (suppressed) entries, both 1-based and unsorted.
pub fn analyze_lines(rel: &str, lines: &[SourceLine]) -> (Vec<Finding>, Vec<Allowed>) {
    let mask = test_mask(lines);
    let mut raws: Vec<Raw> = Vec::new();
    let mut allowed: Vec<Allowed> = Vec::new();

    // --- pragma collection (non-test lines only) ---
    let mut pragmas: Vec<Pragma> = Vec::new();
    for (li, line) in lines.iter().enumerate() {
        if mask[li] {
            continue;
        }
        match parse_pragma(&line.comment) {
            None => {}
            Some(ParsedPragma::Malformed(why)) => raws.push(Raw {
                rule: "A001",
                line: li,
                message: format!("malformed allow pragma: {why}"),
            }),
            Some(ParsedPragma::Valid { rules, reason }) => {
                let target = if line.code.trim().is_empty() {
                    // Standalone pragma: applies to the next code line,
                    // skipping blanks and further standalone pragmas.
                    lines
                        .iter()
                        .enumerate()
                        .skip(li + 1)
                        .find(|(ti, l)| !mask[*ti] && !l.code.trim().is_empty())
                        .map(|(ti, _)| ti)
                } else {
                    Some(li)
                };
                let used = vec![false; rules.len()];
                pragmas.push(Pragma {
                    line: li,
                    target,
                    rules,
                    reason,
                    used,
                });
            }
        }
    }

    rule_d001(rel, lines, &mask, &mut raws);
    rule_d002(rel, lines, &mask, &mut raws);
    rule_d003(rel, lines, &mask, &mut raws);
    rule_p001(rel, lines, &mask, &mut raws);
    rule_l001(lines, &mask, &mut raws);

    // --- pragma resolution ---
    let mut findings: Vec<Finding> = Vec::new();
    for raw in raws {
        let mut suppressed: Option<String> = None;
        if raw.rule != "A001" {
            for p in pragmas.iter_mut() {
                if p.target != Some(raw.line) {
                    continue;
                }
                if let Some(ri) = p.rules.iter().position(|r| r == raw.rule) {
                    p.used[ri] = true;
                    suppressed = Some(p.reason.clone());
                    break;
                }
            }
        }
        match suppressed {
            Some(reason) => allowed.push(Allowed {
                rule: raw.rule.to_owned(),
                file: rel.to_owned(),
                line: raw.line + 1,
                reason,
            }),
            None => findings.push(Finding {
                rule: raw.rule.to_owned(),
                file: rel.to_owned(),
                line: raw.line + 1,
                message: raw.message,
                hint: hint_for(raw.rule).to_owned(),
            }),
        }
    }
    for p in &pragmas {
        for (ri, used) in p.used.iter().enumerate() {
            if !used {
                findings.push(Finding {
                    rule: "A002".to_owned(),
                    file: rel.to_owned(),
                    line: p.line + 1,
                    message: format!(
                        "allow pragma for {} suppressed nothing on its target line",
                        p.rules[ri]
                    ),
                    hint: hint_for("A002").to_owned(),
                });
            }
        }
    }
    (findings, allowed)
}

fn dedup_push(raws: &mut Vec<Raw>, raw: Raw) {
    if !raws
        .iter()
        .any(|r| r.rule == raw.rule && r.line == raw.line)
    {
        raws.push(raw);
    }
}

fn rule_d001(rel: &str, lines: &[SourceLine], mask: &[bool], raws: &mut Vec<Raw>) {
    if !D001_CRATES.contains(&crate_of(rel)) {
        return;
    }
    for (li, line) in lines.iter().enumerate() {
        if mask[li] || line.code.trim_start().starts_with("use ") {
            continue;
        }
        for ident in ["HashMap", "HashSet"] {
            if has_ident(&line.code, ident) {
                dedup_push(
                    raws,
                    Raw {
                        rule: "D001",
                        line: li,
                        message: format!(
                            "`{ident}` in report-producing crate `{}`: iteration order is nondeterministic",
                            crate_of(rel)
                        ),
                    },
                );
            }
        }
    }
}

fn rule_d002(rel: &str, lines: &[SourceLine], mask: &[bool], raws: &mut Vec<Raw>) {
    if crate_of(rel) == "bench" {
        return;
    }
    for (li, line) in lines.iter().enumerate() {
        if mask[li] || line.code.trim_start().starts_with("use ") {
            continue;
        }
        let hit = if line.code.contains("Instant::now") {
            Some("Instant::now")
        } else if has_ident(&line.code, "SystemTime") {
            Some("SystemTime")
        } else {
            None
        };
        let Some(what) = hit else { continue };
        dedup_push(
            raws,
            Raw {
                rule: "D002",
                line: li,
                message: format!("wall-clock read (`{what}`) outside crates/bench"),
            },
        );
    }
}

/// Paren-matched extent of a `thread::spawn(` / `thread::scope(` call:
/// returns the 0-based last line of the call.
fn paren_extent(lines: &[SourceLine], start_line: usize, open_col: usize) -> usize {
    let mut depth = 0i64;
    for (li, line) in lines.iter().enumerate().skip(start_line) {
        let from = if li == start_line { open_col } else { 0 };
        for (bi, c) in line.code.char_indices() {
            if bi < from {
                continue;
            }
            match c {
                '(' => depth += 1,
                ')' => {
                    depth -= 1;
                    if depth == 0 {
                        return li;
                    }
                }
                _ => {}
            }
        }
    }
    lines.len().saturating_sub(1)
}

fn rule_d003(_rel: &str, lines: &[SourceLine], mask: &[bool], raws: &mut Vec<Raw>) {
    for (li, line) in lines.iter().enumerate() {
        if mask[li] {
            continue;
        }
        let spawn = ["thread::spawn(", "thread::scope("]
            .iter()
            .filter_map(|p| line.code.find(p).map(|c| c + p.len() - 1))
            .min();
        let Some(open_col) = spawn else { continue };
        let end = paren_extent(lines, li, open_col);
        // A `chunk-order merge` marker inside the span or up to three
        // lines above it vouches for an ordered reduction.
        let marker_from = li.saturating_sub(3);
        let marked = lines[marker_from..=end.min(lines.len() - 1)]
            .iter()
            .any(|l| {
                l.comment
                    .to_lowercase()
                    .replace('-', " ")
                    .contains("chunk order merge")
            });
        if marked {
            continue;
        }
        for (si, span_line) in lines.iter().enumerate().take(end + 1).skip(li) {
            if mask[si] {
                continue;
            }
            let code = &span_line.code;
            let mut flagged = false;
            if let Some(pos) = code.find("+=") {
                let rhs = code[pos + 2..].trim().trim_end_matches(';').trim();
                let integer =
                    !rhs.is_empty() && rhs.chars().all(|c| c.is_ascii_digit() || c == '_');
                if !integer {
                    flagged = true;
                }
            }
            if code.contains("sum::<f64>")
                || code.contains("sum::<f32>")
                || code.contains("fold(0.0")
            {
                flagged = true;
            }
            if flagged {
                dedup_push(
                    raws,
                    Raw {
                        rule: "D003",
                        line: si,
                        message: "float accumulation inside a thread spawn/scope block without a chunk-order merge marker".to_owned(),
                    },
                );
            }
        }
    }
}

fn rule_p001(rel: &str, lines: &[SourceLine], mask: &[bool], raws: &mut Vec<Raw>) {
    if !P001_FILES.contains(&rel) {
        return;
    }
    for (li, line) in lines.iter().enumerate() {
        if mask[li] {
            continue;
        }
        for pat in [".unwrap(", ".expect("] {
            if line.code.contains(pat) {
                dedup_push(
                    raws,
                    Raw {
                        rule: "P001",
                        line: li,
                        message: format!(
                            "`{})` in panic-policy file: must propagate a CliError instead of panicking",
                            pat.trim_start_matches('.')
                        ),
                    },
                );
            }
        }
    }
}

/// True when `stmt` contains a call whose callee identifier starts with
/// `eval` or `compute` (e.g. `evaluate(`, `self.compute_all(`).
fn has_eval_call(stmt: &str) -> bool {
    for prefix in ["eval", "compute"] {
        let mut from = 0;
        while let Some(p) = stmt[from..].find(prefix) {
            let start = from + p;
            let before_ok =
                start == 0 || !is_ident_char(stmt[..start].chars().next_back().unwrap_or(' '));
            if before_ok {
                let tail = &stmt[start..];
                let ident_bytes: usize = tail
                    .char_indices()
                    .find(|&(_, c)| !is_ident_char(c))
                    .map_or(tail.len(), |(b, _)| b);
                if tail[ident_bytes..].trim_start().starts_with('(') {
                    return true;
                }
            }
            from = start + prefix.len();
        }
    }
    false
}

fn rule_l001(lines: &[SourceLine], mask: &[bool], raws: &mut Vec<Raw>) {
    let mut stmt = String::new();
    let mut stmt_start: Option<usize> = None;
    for (li, line) in lines.iter().enumerate() {
        if mask[li] {
            stmt.clear();
            stmt_start = None;
            continue;
        }
        let code = line.code.trim();
        if code.is_empty() {
            continue;
        }
        if stmt_start.is_none() {
            stmt_start = Some(li);
        }
        stmt.push(' ');
        stmt.push_str(code);
        let over_cap = li - stmt_start.unwrap_or(li) >= 20;
        if code.ends_with(';') || code.ends_with('{') || code.ends_with('}') || over_cap {
            if stmt.contains(".lock(") && has_eval_call(&stmt) {
                dedup_push(
                    raws,
                    Raw {
                        rule: "L001",
                        line: stmt_start.unwrap_or(li),
                        message: "mutex guard bound in the same statement as an eval/compute call: lock held across computation".to_owned(),
                    },
                );
            }
            stmt.clear();
            stmt_start = None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::scan;

    #[test]
    fn test_mask_covers_mod_and_inline_fn() {
        let src = "fn real() {}\n#[cfg(test)]\nmod tests {\n    fn t() {}\n}\nfn after() {}\n";
        let lines = scan(src);
        let mask = test_mask(&lines);
        assert_eq!(mask, vec![false, true, true, true, true, false, false]);
    }

    #[test]
    fn test_mask_tolerates_attribute_variants() {
        // cfg(all(test, ...)), spaced cfg( test ), and #[tokio::test]
        // all gate their item to test builds.
        let src = "#[cfg(all(test, feature = \"x\"))]\nmod t1 { fn a() {} }\n\
                   #[cfg( test )]\nmod t2 { fn b() {} }\n\
                   #[tokio::test]\nasync fn t3() {}\nfn live() {}\n";
        let mask = test_mask(&scan(src));
        assert_eq!(mask[..7], [true, true, true, true, true, true, false]);
    }

    #[test]
    fn test_mask_does_not_cover_cfg_not_test() {
        // cfg(not(test)) bodies are the production build: they must be
        // linted, not masked.
        let src = "#[cfg(not(test))]\nfn prod() {}\n#[cfg(test)]\nfn t() {}\n";
        let mask = test_mask(&scan(src));
        assert_eq!(mask[..4], [false, false, true, true]);
    }

    #[test]
    fn test_mask_ignores_test_inside_cfg_strings() {
        // `test` inside a string literal is blanked by the lexer and
        // must not gate the item.
        let src = "#[cfg(feature = \"test\")]\nfn prod() {}\n";
        let mask = test_mask(&scan(src));
        assert_eq!(mask[..2], [false, false]);
    }

    #[test]
    fn test_mask_handles_braceless_item() {
        let src = "#[cfg(test)]\nuse helper::x;\nfn live() {}\n";
        let mask = test_mask(&scan(src));
        assert!(mask[0]);
        assert!(mask[1]);
        assert!(!mask[2]);
    }

    #[test]
    fn pragma_roundtrip() {
        match parse_pragma(" cimloop-analyze: allow(D001, D002, reason = \"safe: min-scan\")") {
            Some(ParsedPragma::Valid { rules, reason }) => {
                assert_eq!(rules, vec!["D001", "D002"]);
                assert_eq!(reason, "safe: min-scan");
            }
            _ => panic!("expected a valid pragma"),
        }
    }

    #[test]
    fn pragma_requires_reason_and_known_rules() {
        assert!(matches!(
            parse_pragma(" cimloop-analyze: allow(D001)"),
            Some(ParsedPragma::Malformed(_))
        ));
        assert!(matches!(
            parse_pragma(" cimloop-analyze: allow(Z999, reason = \"x\")"),
            Some(ParsedPragma::Malformed(_))
        ));
        assert!(parse_pragma(" just a comment").is_none());
    }

    #[test]
    fn eval_call_matcher() {
        assert!(has_eval_call("let g = m.lock(); g.evaluate(spec)"));
        assert!(has_eval_call("x.compute_all ()"));
        assert!(!has_eval_call("let v = self.computed_value;"));
        assert!(!has_eval_call("medieval(x)"));
    }
}
