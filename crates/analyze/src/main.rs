//! Standalone entry point for `cimloop-analyze`. The same driver is
//! reachable as `cimloop analyze`.

#![forbid(unsafe_code)]

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    ExitCode::from(cimloop_analyze::run_cli(&args))
}
