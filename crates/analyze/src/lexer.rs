//! A minimal Rust source scanner: strings, chars, and comments blanked
//! out of the code channel, comment text preserved in a side channel.
//!
//! The rules in [`crate::rules`] are lexical, so everything hinges on
//! *not* matching inside literals (`"HashMap"` in a test string must not
//! fire D001) and on seeing comments separately (allow pragmas and
//! chunk-order-merge markers live there). The scanner is hand-rolled in
//! the same house style as the yamlite parser: a character walk with a
//! small state machine, no external dependencies.
//!
//! Handled syntax: `//` line comments (incl. `///` and `//!` docs),
//! nested `/* */` block comments, string literals with escapes, raw
//! strings `r"…"` / `r#"…"#` (any hash count, `b`/`br` prefixes), char
//! and byte-char literals, and lifetimes (`'a` is code, `'a'` is a
//! literal). Contents of literals and comments are replaced by spaces in
//! the code channel so byte columns stay stable for reporting.

/// One source line split into its lexical channels.
#[derive(Debug, Clone, Default)]
pub struct SourceLine {
    /// The line with comments and literal *contents* blanked to spaces.
    /// Delimiters (`"`, `'`) are blanked too; brace/paren structure is
    /// preserved exactly.
    pub code: String,
    /// Concatenated text of every comment on the line (without the
    /// `//`/`/*` markers), separated by a single space.
    pub comment: String,
    /// True when the next comment char starts a new comment on this
    /// line, so a separating space is inserted before it.
    comment_gap: bool,
}

impl SourceLine {
    fn push_code(&mut self, c: char) {
        self.code.push(c);
        self.comment_gap = false;
    }

    fn push_blank(&mut self) {
        self.code.push(' ');
    }

    fn push_comment(&mut self, c: char) {
        if self.comment_gap && !self.comment.is_empty() {
            self.comment.push(' ');
        }
        self.comment_gap = false;
        self.comment.push(c);
        self.code.push(' ');
    }
}

impl SourceLine {
    fn start_comment_gap(&mut self) {
        self.comment_gap = true;
    }
}

/// Lexer state across characters.
enum State {
    Code,
    LineComment,
    /// Nested block comments (Rust nests them); the depth counts opens.
    BlockComment(u32),
    /// A normal (escaped) string or byte-string literal.
    Str,
    /// A raw string literal terminated by `"` followed by `hashes` `#`s.
    RawStr(u32),
    /// A char or byte-char literal.
    CharLit,
}

/// Splits `text` into per-line lexical channels. Lines are 0-indexed in
/// the returned vector; reporting adds 1.
pub fn scan(text: &str) -> Vec<SourceLine> {
    let chars: Vec<char> = text.chars().collect();
    let mut lines: Vec<SourceLine> = vec![SourceLine::default()];
    let mut state = State::Code;
    let mut i = 0usize;
    let at = |i: usize| chars.get(i).copied();
    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            if matches!(state, State::LineComment) {
                state = State::Code;
            }
            lines.push(SourceLine::default());
            i += 1;
            continue;
        }
        let line = lines.last_mut().expect("scan starts with one line");
        match state {
            State::Code => {
                match c {
                    '/' if at(i + 1) == Some('/') => {
                        state = State::LineComment;
                        line.start_comment_gap();
                        line.push_blank();
                        line.push_blank();
                        i += 2;
                        continue;
                    }
                    '/' if at(i + 1) == Some('*') => {
                        state = State::BlockComment(1);
                        line.start_comment_gap();
                        line.push_blank();
                        line.push_blank();
                        i += 2;
                        continue;
                    }
                    '"' => {
                        // Look back over `#`s and an `r`/`br` prefix to
                        // detect a raw string and its hash count. The
                        // prefix chars are checked directly, so a raw
                        // string whose `r` sits at byte offset 0 of the
                        // file is detected too.
                        let mut j = i;
                        let mut hashes = 0u32;
                        while j > 0 && chars[j - 1] == '#' {
                            j -= 1;
                            hashes += 1;
                        }
                        let r_at = j.checked_sub(1).map(|k| chars[k] == 'r');
                        let before_r = j.checked_sub(2).map(|k| chars[k]);
                        let raw = r_at == Some(true)
                            && match before_r {
                                // `r"` opens the file, or follows a
                                // non-identifier char, or is `br"`.
                                None => true,
                                Some('b') => true,
                                Some(c) => !is_ident_char(c),
                            };
                        if raw {
                            state = State::RawStr(hashes);
                        } else {
                            state = State::Str;
                        }
                        line.push_blank();
                    }
                    '\'' => {
                        // `'a'` (and `'\n'`, `b'x'`) are literals; `'a`
                        // in `<'a>` or `&'static` is a lifetime and stays
                        // in the code channel.
                        let next = at(i + 1);
                        let after = at(i + 2);
                        let is_char_literal = match next {
                            Some('\\') => true,
                            Some(n) if is_ident_char(n) => after == Some('\''),
                            Some(_) => after == Some('\''),
                            None => false,
                        };
                        if is_char_literal {
                            state = State::CharLit;
                            line.push_blank();
                        } else {
                            // A lifetime: the tick is code.
                            line.push_code('\'');
                        }
                    }
                    _ => line.push_code(c),
                }
                i += 1;
            }
            State::LineComment => {
                line.push_comment(c);
                i += 1;
            }
            State::BlockComment(depth) => {
                if c == '*' && at(i + 1) == Some('/') {
                    line.push_blank();
                    line.push_blank();
                    i += 2;
                    if depth == 1 {
                        state = State::Code;
                    } else {
                        state = State::BlockComment(depth - 1);
                    }
                } else if c == '/' && at(i + 1) == Some('*') {
                    line.push_comment(c);
                    line.push_comment('*');
                    i += 2;
                    state = State::BlockComment(depth + 1);
                } else {
                    line.push_comment(c);
                    i += 1;
                }
            }
            State::Str => {
                match c {
                    '\\' => {
                        line.push_blank();
                        // Skip the escaped char — but never a newline
                        // (string line-continuations), so line counting
                        // stays exact.
                        if at(i + 1).is_some_and(|n| n != '\n') {
                            line.push_blank();
                            i += 1;
                        }
                    }
                    '"' => {
                        line.push_blank();
                        state = State::Code;
                    }
                    _ => line.push_blank(),
                }
                i += 1;
            }
            State::RawStr(hashes) => {
                if c == '"' {
                    let mut ok = true;
                    for k in 0..hashes as usize {
                        if at(i + 1 + k) != Some('#') {
                            ok = false;
                            break;
                        }
                    }
                    if ok {
                        for _ in 0..=hashes as usize {
                            line.push_blank();
                        }
                        i += 1 + hashes as usize;
                        state = State::Code;
                        continue;
                    }
                }
                line.push_blank();
                i += 1;
            }
            State::CharLit => {
                match c {
                    '\\' => {
                        line.push_blank();
                        if at(i + 1).is_some_and(|n| n != '\n') {
                            line.push_blank();
                            i += 1;
                        }
                    }
                    '\'' => {
                        line.push_blank();
                        state = State::Code;
                    }
                    _ => line.push_blank(),
                }
                i += 1;
            }
        }
    }
    lines
}

/// Whether `c` may appear inside a Rust identifier.
pub fn is_ident_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Whether `needle` occurs in `haystack` as a whole identifier (not as a
/// substring of a longer identifier).
pub fn has_ident(haystack: &str, needle: &str) -> bool {
    find_ident(haystack, needle).is_some()
}

/// Byte offset of the first whole-identifier occurrence of `needle`.
pub fn find_ident(haystack: &str, needle: &str) -> Option<usize> {
    let mut from = 0;
    while let Some(pos) = haystack[from..].find(needle) {
        let start = from + pos;
        let end = start + needle.len();
        let before_ok =
            start == 0 || !is_ident_char(haystack[..start].chars().next_back().unwrap_or(' '));
        let after_ok = !haystack[end..].chars().next().is_some_and(is_ident_char);
        if before_ok && after_ok {
            return Some(start);
        }
        from = end;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn code_of(text: &str) -> Vec<String> {
        scan(text).into_iter().map(|l| l.code).collect()
    }

    #[test]
    fn strings_are_blanked_but_structure_survives() {
        let code = code_of("let s = format!(\"{{\\\"cache\\\": {}}}\", x);");
        assert_eq!(code.len(), 1);
        assert!(!code[0].contains("cache"));
        // The parens and braces of *code* survive; the literal's braces
        // are blanked so depth tracking cannot be fooled.
        assert_eq!(code[0].matches('(').count(), 1);
        assert_eq!(code[0].matches('{').count(), 0);
    }

    #[test]
    fn line_comment_goes_to_the_comment_channel() {
        let lines = scan("let x = 1; // cimloop-analyze: allow(D001, reason = \"x\")");
        assert!(lines[0].code.contains("let x = 1;"));
        assert!(!lines[0].code.contains("allow"));
        assert!(lines[0].comment.contains("cimloop-analyze: allow(D001"));
    }

    #[test]
    fn raw_strings_and_char_literals_are_blanked() {
        let code =
            code_of("let r = r#\"HashMap \"quoted\" inside\"#; let c = 'x'; let l: &'a str = s;");
        assert!(!code[0].contains("HashMap"));
        assert!(!code[0].contains('x'));
        // The lifetime survives as code.
        assert!(code[0].contains("&'a str"));
    }

    #[test]
    fn raw_string_at_file_offset_zero_is_raw() {
        // The `r` prefix is the file's first byte; a backslash before
        // the closing quote must not swallow the terminator.
        let code = code_of("r\"\\\" let m: HashMap<u8, u8>;\nlet y = 2;\n");
        assert!(has_ident(&code[0], "HashMap"));
        assert!(code[1].contains("let y = 2;"));
        // Same with a hash-delimited raw string opening the file.
        let code = code_of("r#\"a \"quoted\" b\"# ; let m: HashMap<u8, u8>;");
        assert!(has_ident(&code[0], "HashMap"));
        assert!(!code[0].contains("quoted"));
    }

    #[test]
    fn escaped_quote_in_char_literal_does_not_derail() {
        let code = code_of("let q = '\\''; let m = std::collections::HashMap::new();");
        assert!(code[0].contains("HashMap"));
    }

    #[test]
    fn nested_block_comments_close_correctly() {
        let code = code_of("/* outer /* inner */ still comment */ let y = 2;");
        assert!(code[0].contains("let y = 2;"));
        assert!(!code[0].contains("outer"));
    }

    #[test]
    fn string_line_continuation_keeps_line_numbers() {
        let src = "let s = \"first \\\n    second\";\nlet t = 3;\n";
        let code = code_of(src);
        assert_eq!(code.len(), 4);
        assert!(code[2].contains("let t = 3;"));
    }

    #[test]
    fn ident_boundaries_are_respected() {
        assert!(has_ident("let m: HashMap<u8, u8>;", "HashMap"));
        assert!(!has_ident("let m = my_hash_map();", "HashMap"));
        assert!(!has_ident("struct HashMapLike;", "HashMap"));
    }
}
