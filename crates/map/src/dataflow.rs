use std::collections::BTreeMap;

use cimloop_spec::{Hierarchy, Node, Reuse, Tensor};
use cimloop_workload::{relevant_dims, Dim, Shape};

use crate::{MapError, Mapping};

/// Read/write action counts for one component and tensor.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Actions {
    /// Read-like actions: serves, converts, additions, MAC reads.
    pub reads: f64,
    /// Write-like actions: fills, updates, emissions.
    pub writes: f64,
}

impl Actions {
    /// Total actions of both kinds.
    pub fn total(&self) -> f64 {
        self.reads + self.writes
    }
}

/// The result of dataflow analysis: per-component, per-tensor action counts
/// plus mapping-level summary statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct DataflowResult {
    components: BTreeMap<String, [Actions; 3]>,
    external: [f64; 3],
    padded_macs: u64,
    actual_macs: u64,
    temporal_steps: u64,
    spatial_used: u64,
    spatial_total: u64,
}

impl DataflowResult {
    /// Action counts of `component` for `tensor` (zero if inactive).
    pub fn actions(&self, component: &str, tensor: Tensor) -> Actions {
        self.components
            .get(component)
            .map(|per| per[tensor as usize])
            .unwrap_or_default()
    }

    /// Total actions of `component` summed over tensors.
    pub fn total_actions(&self, component: &str) -> Actions {
        let mut total = Actions::default();
        if let Some(per) = self.components.get(component) {
            for a in per {
                total.reads += a.reads;
                total.writes += a.writes;
            }
        }
        total
    }

    /// Iterates `(component, per-tensor actions)` in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &[Actions; 3])> {
        self.components.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Traffic of `tensor` left unabsorbed at the hierarchy root (supplied
    /// externally, e.g., pre-loaded weights when no DRAM is modeled).
    pub fn external_traffic(&self, tensor: Tensor) -> f64 {
        self.external[tensor as usize]
    }

    /// Slice-granular MAC events the mapped hardware performs (includes
    /// padding and bit-slice repetition).
    pub fn padded_macs(&self) -> u64 {
        self.padded_macs
    }

    /// Useful word-level MACs of the workload.
    pub fn actual_macs(&self) -> u64 {
        self.actual_macs
    }

    /// Sequential steps (array activations) implied by the temporal loops.
    pub fn temporal_steps(&self) -> u64 {
        self.temporal_steps
    }

    /// Fraction of mapped iteration space doing useful work
    /// (`actual × slices / padded`).
    pub fn utilization(&self) -> f64 {
        if self.padded_macs == 0 {
            return 0.0;
        }
        let useful = self.actual_macs as f64 * self.slice_factor();
        useful / self.padded_macs as f64
    }

    /// Fraction of available spatial instances the mapping uses.
    pub fn spatial_utilization(&self) -> f64 {
        if self.spatial_total == 0 {
            return 0.0;
        }
        self.spatial_used as f64 / self.spatial_total as f64
    }

    fn slice_factor(&self) -> f64 {
        // padded includes Is/Ws; actual counts words. The ratio of slice
        // events per useful word-MAC is padded-slices (both slice bounds).
        1.0
    }
}

/// Runs dataflow analysis for `mapping` of `shape` onto `hierarchy`.
///
/// Walks the implied loop nest from the innermost compute outward,
/// transforming link traffic according to each node's reuse directives (see
/// the crate docs for the rules) and billing actions to every active
/// component.
///
/// # Errors
///
/// Returns any [`MapError`] from [`Mapping::validate`].
pub fn analyze(
    hierarchy: &Hierarchy,
    shape: Shape,
    mapping: &Mapping,
) -> Result<DataflowResult, MapError> {
    mapping.validate(hierarchy, shape)?;
    let nodes = hierarchy.nodes();
    let entries = mapping.entries();
    let n = nodes.len();

    // Per-node, per-dim factor products.
    let mut temporal = vec![[1u64; 9]; n];
    let mut spatial = vec![[1u64; 9]; n];
    for (i, e) in entries.iter().enumerate() {
        for &(d, b) in &e.temporal {
            temporal[i][d as usize] *= b;
        }
        for &(d, b) in &e.spatial {
            spatial[i][d as usize] *= b;
        }
    }

    // inside[i][d]: product of factors strictly inside node i, plus node i's
    // own temporal factors (its loops iterate its contents) — the per-
    // instance tile extent for dimension d at node i.
    let mut inside = vec![[1u64; 9]; n];
    {
        let mut suffix = [1u64; 9]; // ∏_{j>i} temporal×spatial
        for i in (0..n).rev() {
            for d in 0..9 {
                inside[i][d] = temporal[i][d] * suffix[d];
            }
            for d in 0..9 {
                suffix[d] *= temporal[i][d] * spatial[i][d];
            }
        }
    }

    // instances[i]: used instances of node i (product of used fanouts of all
    // nodes at or above i, including node i's own spatial factors).
    let mut instances = vec![1u64; n];
    {
        let mut acc = 1u64;
        for i in 0..n {
            acc = acc.saturating_mul(entries[i].used_fanout().max(1));
            instances[i] = acc;
        }
    }

    // Flat list of temporal loops in execution order (outer→inner) with the
    // node index they belong to.
    let mut flat_loops: Vec<(usize, Dim, u64)> = Vec::new();
    for (i, e) in entries.iter().enumerate() {
        for &(d, b) in &e.temporal {
            flat_loops.push((i, d, b));
        }
    }

    let padded_macs: u64 = Dim::ALL.iter().map(|&d| mapping.padded_bound(d)).product();

    let mut components: BTreeMap<String, [Actions; 3]> = BTreeMap::new();
    for node in nodes {
        if let Node::Component(c) = node {
            components.insert(c.name().to_owned(), [Actions::default(); 3]);
        }
    }
    let mut external = [0.0f64; 3];

    for tensor in Tensor::ALL {
        let rel = relevant_dims(tensor);
        let is_rel = |d: Dim| rel.contains(&d);

        // Refetch multiplier M(i): over the flat temporal loops belonging to
        // nodes strictly above i, the product of bounds of every loop at or
        // outside the innermost loop relevant to this tensor.
        let refetch = |i: usize| -> f64 {
            let above: Vec<&(usize, Dim, u64)> =
                flat_loops.iter().filter(|&&(j, _, _)| j < i).collect();
            let last_rel = above.iter().rposition(|&&(_, d, _)| is_rel(d));
            match last_rel {
                None => 1.0,
                Some(pos) => above[..=pos].iter().map(|&&(_, _, b)| b as f64).product(),
            }
        };
        // Like `refetch` but counting only relevant loops: the number of
        // distinct tile versions (used for output partial-sum accounting).
        let distinct_mult = |i: usize| -> f64 {
            flat_loops
                .iter()
                .filter(|&&(j, d, _)| j < i && is_rel(d))
                .map(|&(_, _, b)| b as f64)
                .product()
        };
        // Per-instance tile of `tensor` at node i, in the granularity the
        // node stores: word-granular storage divides out slice factors held
        // inside it (slices of one operand live in the same word).
        let tile = |i: usize, slice_granular: bool| -> f64 {
            rel.iter()
                .filter(|d| slice_granular || !d.is_slice())
                .map(|&d| inside[i][d as usize] as f64)
                .product()
        };

        let mut traffic = padded_macs as f64;
        let mut dup = 1.0f64; // spatially-parallel duplicates not yet merged

        for i in (0..n).rev() {
            let node = &nodes[i];
            // 1. Component function, billed at the inside-link traffic.
            if let Node::Component(c) = node {
                let reuse = c.reuse(tensor);
                if reuse.is_active() {
                    let bill = &mut components.get_mut(c.name()).expect("component registered")
                        [tensor as usize];
                    match reuse {
                        Reuse::Temporal => {
                            let slice_granular =
                                c.attributes().bool("slice_storage").unwrap_or(false);
                            let fills = tile(i, slice_granular) * refetch(i) * instances[i] as f64;
                            if tensor == Tensor::Outputs {
                                // Updates arrive from below; partials bounce
                                // to/from the parent per the refetch rule.
                                let distinct = tile(i, slice_granular)
                                    * distinct_mult(i)
                                    * instances[i] as f64;
                                bill.writes += traffic;
                                bill.reads += (fills - distinct).max(0.0) + fills;
                            } else {
                                bill.reads += traffic;
                                bill.writes += fills;
                            }
                            traffic = fills;
                            dup = 1.0;
                        }
                        Reuse::NoCoalesce => {
                            bill.reads += traffic;
                        }
                        Reuse::Coalesce => {
                            bill.reads += traffic;
                            traffic /= dup;
                            dup = 1.0;
                            bill.writes += traffic;
                        }
                        Reuse::Bypass => unreachable!("is_active filtered bypass"),
                    }
                }
            }
            // 2. The node's own spatial fanout: multicast/reduce in-network,
            // or carry duplicates outward unmerged.
            let irr: f64 = Dim::ALL
                .iter()
                .filter(|&&d| !is_rel(d))
                .map(|&d| spatial[i][d as usize] as f64)
                .product();
            if irr > 1.0 {
                if node.spatial_reuse(tensor) {
                    traffic /= irr;
                } else {
                    dup *= irr;
                }
            }
        }
        external[tensor as usize] = traffic;
    }

    let spatial_used: u64 = entries.iter().map(|e| e.used_fanout().max(1)).product();
    let spatial_total: u64 = nodes.iter().map(|nd| nd.spatial().fanout()).product();

    Ok(DataflowResult {
        components,
        external,
        padded_macs,
        actual_macs: shape.macs(),
        temporal_steps: mapping.temporal_steps(),
        spatial_used,
        spatial_total,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NodeMapping;
    use cimloop_spec::{Component, Container, Spatial};

    /// The paper's Fig 5a/5b macro with a buffer on top:
    /// buffer → macro { DAC → column×4 { ADC → cell×4 } }.
    fn fig5_hierarchy(cols: u64, rows: u64) -> Hierarchy {
        Hierarchy::builder()
            .component(
                Component::new("buffer")
                    .with_reuse(Tensor::Inputs, Reuse::Temporal)
                    .with_reuse(Tensor::Outputs, Reuse::Temporal),
            )
            .container(Container::new("macro"))
            .component(Component::new("adder").with_reuse(Tensor::Outputs, Reuse::Coalesce))
            .component(Component::new("DAC").with_reuse(Tensor::Inputs, Reuse::NoCoalesce))
            .container(
                Container::new("column")
                    .with_spatial(Spatial::new(cols, 1))
                    .with_spatial_reuse(Tensor::Inputs),
            )
            .component(Component::new("ADC").with_reuse(Tensor::Outputs, Reuse::NoCoalesce))
            .component(
                Component::new("cell")
                    .with_reuse(Tensor::Weights, Reuse::Temporal)
                    .with_spatial(Spatial::new(1, rows))
                    .with_spatial_reuse(Tensor::Outputs),
            )
            .build()
            .unwrap()
    }

    fn simple_mapping(n: u64, k: u64, c: u64) -> Mapping {
        Mapping::new(vec![
            NodeMapping::new("buffer").with_temporal(Dim::N, n),
            NodeMapping::new("macro"),
            NodeMapping::new("adder"),
            NodeMapping::new("DAC"),
            NodeMapping::new("column").with_spatial(Dim::K, k),
            NodeMapping::new("ADC"),
            NodeMapping::new("cell").with_spatial(Dim::C, c),
        ])
    }

    #[test]
    fn base_macro_action_counts() {
        let h = fig5_hierarchy(4, 4);
        let shape = Shape::linear(2, 4, 4).unwrap();
        let m = simple_mapping(2, 4, 4);
        let r = analyze(&h, shape, &m).unwrap();

        assert_eq!(r.padded_macs(), 32);
        assert_eq!(r.actual_macs(), 32);
        assert_eq!(r.temporal_steps(), 2);
        assert!((r.utilization() - 1.0).abs() < 1e-12);

        // DAC converts: one per row per step = 4 × 2 (inputs multicast
        // across the 4 columns).
        assert_eq!(r.actions("DAC", Tensor::Inputs).reads, 8.0);
        // ADC converts: one per column per step (4 rows reduced on wire).
        assert_eq!(r.actions("ADC", Tensor::Outputs).reads, 8.0);
        // Cells: one weight-read per MAC; 16 weights programmed once.
        assert_eq!(r.actions("cell", Tensor::Weights).reads, 32.0);
        assert_eq!(r.actions("cell", Tensor::Weights).writes, 16.0);
        // Buffer serves 8 input reads and receives 8 output updates.
        assert_eq!(r.actions("buffer", Tensor::Inputs).reads, 8.0);
        assert_eq!(r.actions("buffer", Tensor::Outputs).writes, 8.0);
        // Inputs filled once each: N×C = 8 words.
        assert_eq!(r.actions("buffer", Tensor::Inputs).writes, 8.0);
    }

    #[test]
    fn no_spatial_reuse_of_inputs_multiplies_dac_converts() {
        // Same array but inputs unicast to each column: DAC converts 4x.
        let h = Hierarchy::builder()
            .component(
                Component::new("buffer")
                    .with_reuse(Tensor::Inputs, Reuse::Temporal)
                    .with_reuse(Tensor::Outputs, Reuse::Temporal),
            )
            .container(Container::new("macro"))
            .component(Component::new("DAC").with_reuse(Tensor::Inputs, Reuse::NoCoalesce))
            .container(Container::new("column").with_spatial(Spatial::new(4, 1)))
            .component(Component::new("ADC").with_reuse(Tensor::Outputs, Reuse::NoCoalesce))
            .component(
                Component::new("cell")
                    .with_reuse(Tensor::Weights, Reuse::Temporal)
                    .with_spatial(Spatial::new(1, 4))
                    .with_spatial_reuse(Tensor::Outputs),
            )
            .build()
            .unwrap();
        let shape = Shape::linear(2, 4, 4).unwrap();
        let m = Mapping::new(vec![
            NodeMapping::new("buffer").with_temporal(Dim::N, 2),
            NodeMapping::new("macro"),
            NodeMapping::new("DAC"),
            NodeMapping::new("column").with_spatial(Dim::K, 4),
            NodeMapping::new("ADC"),
            NodeMapping::new("cell").with_spatial(Dim::C, 4),
        ]);
        let r = analyze(&h, shape, &m).unwrap();
        // Without multicast the DAC re-converts per column: 8 × 4.
        assert_eq!(r.actions("DAC", Tensor::Inputs).reads, 32.0);
    }

    #[test]
    fn coalescing_adder_merges_unreduced_columns() {
        // Columns mapped over C (bits of different weights summed): outputs
        // are NOT reduced in-network between columns, so the adder coalesces.
        let h = Hierarchy::builder()
            .component(
                Component::new("buffer")
                    .with_reuse(Tensor::Inputs, Reuse::Temporal)
                    .with_reuse(Tensor::Outputs, Reuse::Temporal),
            )
            .container(Container::new("macro"))
            .component(Component::new("adder").with_reuse(Tensor::Outputs, Reuse::Coalesce))
            .container(Container::new("column").with_spatial(Spatial::new(4, 1)))
            .component(Component::new("ADC").with_reuse(Tensor::Outputs, Reuse::NoCoalesce))
            .component(
                Component::new("cell")
                    .with_reuse(Tensor::Weights, Reuse::Temporal)
                    .with_spatial(Spatial::new(1, 4))
                    .with_spatial_reuse(Tensor::Outputs),
            )
            .build()
            .unwrap();
        let shape = Shape::new(2, 1, 16, 1, 1, 1, 1).unwrap(); // one output, C=16
        let m = Mapping::new(vec![
            NodeMapping::new("buffer").with_temporal(Dim::N, 2),
            NodeMapping::new("macro"),
            NodeMapping::new("adder"),
            NodeMapping::new("column").with_spatial(Dim::C, 4),
            NodeMapping::new("ADC"),
            NodeMapping::new("cell").with_spatial(Dim::C, 4),
        ]);
        let r = analyze(&h, shape, &m).unwrap();
        // 16 partials per step: 4 reduced on rows → 4 column outputs → ADC
        // converts 4 per step (8 total). The adder consumes 8 and emits 2.
        assert_eq!(r.actions("ADC", Tensor::Outputs).reads, 8.0);
        assert_eq!(r.actions("adder", Tensor::Outputs).reads, 8.0);
        assert_eq!(r.actions("adder", Tensor::Outputs).writes, 2.0);
        // Buffer receives the coalesced outputs only.
        assert_eq!(r.actions("buffer", Tensor::Outputs).writes, 2.0);
    }

    #[test]
    fn weight_refetch_follows_permutation() {
        let h = fig5_hierarchy(2, 2);
        // C=4 over 2 rows: temporal C loop needed. Order 1: C outer, N inner
        // (weights fetched once per C-tile). Order 2: N outer, C inner
        // (weights refetched every N iteration).
        let shape = Shape::linear(3, 2, 4).unwrap();
        let weights_stationary = Mapping::new(vec![
            NodeMapping::new("buffer")
                .with_temporal(Dim::C, 2)
                .with_temporal(Dim::N, 3),
            NodeMapping::new("macro"),
            NodeMapping::new("adder"),
            NodeMapping::new("DAC"),
            NodeMapping::new("column").with_spatial(Dim::K, 2),
            NodeMapping::new("ADC"),
            NodeMapping::new("cell").with_spatial(Dim::C, 2),
        ]);
        let weights_thrash = Mapping::new(vec![
            NodeMapping::new("buffer")
                .with_temporal(Dim::N, 3)
                .with_temporal(Dim::C, 2),
            NodeMapping::new("macro"),
            NodeMapping::new("adder"),
            NodeMapping::new("DAC"),
            NodeMapping::new("column").with_spatial(Dim::K, 2),
            NodeMapping::new("ADC"),
            NodeMapping::new("cell").with_spatial(Dim::C, 2),
        ]);
        let stationary = analyze(&h, shape, &weights_stationary).unwrap();
        let thrash = analyze(&h, shape, &weights_thrash).unwrap();
        // Stationary: each of the 8 weights programmed once per C-chunk: the
        // 2-row array holds C=2 × K=2 = 4 weights; 2 chunks → 8 programs.
        assert_eq!(stationary.actions("cell", Tensor::Weights).writes, 8.0);
        // Thrashing: reprogrammed for every N: 8 × 3 = 24.
        assert_eq!(thrash.actions("cell", Tensor::Weights).writes, 24.0);
        // MAC read counts are mapping-order-invariant.
        assert_eq!(
            stationary.actions("cell", Tensor::Weights).reads,
            thrash.actions("cell", Tensor::Weights).reads
        );
    }

    #[test]
    fn output_partials_bounce_without_accumulator() {
        let h = fig5_hierarchy(2, 2);
        // C=4 over 2 rows with C temporal loop OUTSIDE N: output partials
        // written to the buffer twice per output.
        let shape = Shape::linear(3, 2, 4).unwrap();
        let m = Mapping::new(vec![
            NodeMapping::new("buffer")
                .with_temporal(Dim::C, 2)
                .with_temporal(Dim::N, 3),
            NodeMapping::new("macro"),
            NodeMapping::new("adder"),
            NodeMapping::new("DAC"),
            NodeMapping::new("column").with_spatial(Dim::K, 2),
            NodeMapping::new("ADC"),
            NodeMapping::new("cell").with_spatial(Dim::C, 2),
        ]);
        let r = analyze(&h, shape, &m).unwrap();
        // 6 outputs, each updated once per C-chunk (2 chunks) = 12 writes.
        assert_eq!(r.actions("buffer", Tensor::Outputs).writes, 12.0);
    }

    #[test]
    fn padding_reduces_utilization() {
        let h = fig5_hierarchy(4, 4);
        // K=3 padded onto 4 columns.
        let shape = Shape::linear(2, 3, 4).unwrap();
        let m = simple_mapping(2, 4, 4);
        let r = analyze(&h, shape, &m).unwrap();
        assert_eq!(r.padded_macs(), 32);
        assert_eq!(r.actual_macs(), 24);
        assert!((r.utilization() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn slice_dims_multiply_converter_traffic_not_buffer_words() {
        let h = fig5_hierarchy(4, 4);
        // 8 input slices (bit-serial): Is temporal at the buffer.
        let shape = Shape::linear(2, 4, 4).unwrap().with_slices(8, 1).unwrap();
        let mut m = simple_mapping(2, 4, 4);
        m.entry_mut("buffer").unwrap().temporal.push((Dim::Is, 8));
        let r = analyze(&h, shape, &m).unwrap();
        // DAC converts one slice per row per step: 4 rows × 2 N × 8 slices.
        assert_eq!(r.actions("DAC", Tensor::Inputs).reads, 64.0);
        // Buffer still fills only 8 input WORDS from outside.
        assert_eq!(r.actions("buffer", Tensor::Inputs).writes, 8.0);
        // ADC converts multiply by slices: 4 cols × 2 N × 8 slices.
        assert_eq!(r.actions("ADC", Tensor::Outputs).reads, 64.0);
        assert_eq!(r.temporal_steps(), 16);
    }

    #[test]
    fn external_traffic_reports_unabsorbed_tensors() {
        let h = fig5_hierarchy(4, 4);
        let shape = Shape::linear(2, 4, 4).unwrap();
        let r = analyze(&h, shape, &simple_mapping(2, 4, 4)).unwrap();
        // Weights have no storage above the cells: 16 arrive externally.
        assert_eq!(r.external_traffic(Tensor::Weights), 16.0);
        // Inputs/outputs are rooted at the buffer: external = buffer fills.
        assert_eq!(r.external_traffic(Tensor::Inputs), 8.0);
    }

    #[test]
    fn spatial_utilization_counts_idle_units() {
        let h = fig5_hierarchy(8, 8); // 64 cells available
        let shape = Shape::linear(2, 4, 4).unwrap();
        let r = analyze(&h, shape, &simple_mapping(2, 4, 4)).unwrap();
        assert!((r.spatial_utilization() - 16.0 / 64.0).abs() < 1e-12);
    }

    #[test]
    fn invalid_mapping_propagates_error() {
        let h = fig5_hierarchy(4, 4);
        let shape = Shape::linear(2, 4, 4).unwrap();
        let bad = Mapping::new(vec![NodeMapping::new("buffer")]);
        assert!(analyze(&h, shape, &bad).is_err());
    }
}
