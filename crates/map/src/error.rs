use std::error::Error;
use std::fmt;

/// Error raised when validating mappings or running dataflow analysis.
#[derive(Debug, Clone, PartialEq)]
pub enum MapError {
    /// The mapping does not have one entry per hierarchy node.
    LengthMismatch {
        /// Nodes in the hierarchy.
        hierarchy: usize,
        /// Entries in the mapping.
        mapping: usize,
    },
    /// A mapping entry names a different node than the hierarchy position.
    NameMismatch {
        /// Position in the hierarchy.
        index: usize,
        /// Name expected from the hierarchy.
        expected: String,
        /// Name found in the mapping.
        found: String,
    },
    /// A node's spatial factors exceed its mesh fanout.
    SpatialOverflow {
        /// The offending node.
        node: String,
        /// Product of spatial factors requested.
        used: u64,
        /// Available mesh fanout.
        mesh: u64,
    },
    /// The product of all factors of a dimension is below the workload bound.
    Uncovered {
        /// The dimension's name.
        dim: &'static str,
        /// Product of mapped factors.
        mapped: u64,
        /// Workload bound.
        required: u64,
    },
    /// A loop bound of zero was supplied.
    ZeroFactor {
        /// The offending node.
        node: String,
    },
    /// The mapper could not produce any valid mapping.
    NoMappingFound {
        /// Why the search failed.
        reason: String,
    },
}

impl fmt::Display for MapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MapError::LengthMismatch { hierarchy, mapping } => write!(
                f,
                "mapping has {mapping} entries but the hierarchy has {hierarchy} nodes"
            ),
            MapError::NameMismatch {
                index,
                expected,
                found,
            } => write!(
                f,
                "mapping entry {index} names `{found}` but the hierarchy has `{expected}`"
            ),
            MapError::SpatialOverflow { node, used, mesh } => write!(
                f,
                "node `{node}` maps {used} spatial iterations onto a mesh of {mesh}"
            ),
            MapError::Uncovered {
                dim,
                mapped,
                required,
            } => write!(
                f,
                "dimension {dim} maps {mapped} iterations but the workload needs {required}"
            ),
            MapError::ZeroFactor { node } => {
                write!(f, "node `{node}` has a zero loop bound")
            }
            MapError::NoMappingFound { reason } => {
                write!(f, "mapper found no valid mapping: {reason}")
            }
        }
    }
}

impl Error for MapError {}
