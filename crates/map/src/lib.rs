//! Loop-nest mapping representation, dataflow analysis, and mapper search.
//!
//! This crate is the Timeloop substrate of the reproduction (see PAPER.md
//! and ROADMAP.md): CiMLoop needs, for any workload layer, hierarchy, and mapping, the
//! number of *actions* each component performs for each tensor. Per-action
//! energies (which are mapping-invariant, paper §III-D3) come from the
//! circuit plug-ins; multiplying the two yields system energy.
//!
//! # Model
//!
//! A [`Mapping`] assigns, to every node of a
//! [`cimloop_spec::Hierarchy`] (outermost first):
//!
//! - ordered **temporal loops** `(dim, bound)` — iteration sequenced at that
//!   point of the hierarchy, and
//! - **spatial factors** `(dim, bound)` — work spread across the node's
//!   `meshX × meshY` instances.
//!
//! [`analyze`] walks the implied loop nest and computes, per component and
//! tensor, read/write action counts obeying the paper's reuse directives:
//!
//! - *Temporal-reuse* storage absorbs refetches according to the
//!   permutation-aware rule: a tile is re-fetched from the parent once per
//!   iteration of every loop above the storage positioned at or outside the
//!   innermost loop relevant to the tensor.
//! - *Spatial reuse* multicasts inputs (one parent read feeds all sibling
//!   units) or reduces outputs (partials from siblings merge in-network).
//! - *No-coalesce* transit components (DACs, ADCs) are billed once per datum
//!   passing them.
//! - *Coalesce* components merge the spatially-parallel duplicates that the
//!   network did not reduce (the paper's digital adder).
//!
//! # Example
//!
//! ```
//! use cimloop_map::{analyze, Mapper, Strategy};
//! use cimloop_spec::Hierarchy;
//! use cimloop_workload::models;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let spec = "
//! !Component
//! name: buffer
//! temporal_reuse: [Inputs, Outputs]
//! !Container
//! name: macro
//! !Component
//! name: DAC_bank
//! no_coalesce: [Inputs]
//! !Container
//! name: column
//! spatial: { meshX: 64 }
//! spatial_reuse: [Inputs]
//! spatial_dims: K
//! !Component
//! name: ADC
//! no_coalesce: [Outputs]
//! !Component
//! name: memory_cell
//! spatial: { meshY: 64 }
//! temporal_reuse: [Weights]
//! spatial_reuse: [Outputs]
//! spatial_dims: C
//! ";
//! let hierarchy = Hierarchy::from_yamlite(spec)?;
//! let net = models::resnet18();
//! let layer = &net.layers()[5];
//! let mapping = Mapper::new(Strategy::WeightStationary)
//!     .map(&hierarchy, layer.shape())?;
//! let counts = analyze(&hierarchy, layer.shape(), &mapping)?;
//! assert_eq!(counts.actual_macs(), layer.macs());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(clippy::dbg_macro)]
#![warn(clippy::print_stderr)]
#![warn(missing_docs)]

mod dataflow;
mod error;
mod mapper;
mod mapping;

pub use dataflow::{analyze, Actions, DataflowResult};
pub use error::MapError;
pub use mapper::{Mapper, Strategy};
pub use mapping::{Mapping, NodeMapping};
