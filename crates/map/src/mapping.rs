use cimloop_spec::Hierarchy;
use cimloop_workload::{Dim, Shape};

use crate::MapError;

/// The loops assigned to one hierarchy node.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct NodeMapping {
    /// Node name (must match the hierarchy position).
    pub node: String,
    /// Ordered temporal loops, outermost first, sequenced at this node.
    pub temporal: Vec<(Dim, u64)>,
    /// Spatial factors spread across this node's mesh instances.
    pub spatial: Vec<(Dim, u64)>,
}

impl NodeMapping {
    /// Creates an empty mapping entry for `node`.
    pub fn new(node: impl Into<String>) -> Self {
        NodeMapping {
            node: node.into(),
            temporal: Vec::new(),
            spatial: Vec::new(),
        }
    }

    /// Adds a temporal loop (appended inside existing loops).
    pub fn with_temporal(mut self, dim: Dim, bound: u64) -> Self {
        self.temporal.push((dim, bound));
        self
    }

    /// Adds a spatial factor.
    pub fn with_spatial(mut self, dim: Dim, bound: u64) -> Self {
        self.spatial.push((dim, bound));
        self
    }

    /// Product of all spatial factors (instances used).
    pub fn used_fanout(&self) -> u64 {
        self.spatial.iter().map(|&(_, b)| b).product()
    }

    /// Product of this node's temporal factors for one dimension.
    pub fn temporal_product(&self, dim: Dim) -> u64 {
        self.temporal
            .iter()
            .filter(|&&(d, _)| d == dim)
            .map(|&(_, b)| b)
            .product()
    }

    /// Product of this node's spatial factors for one dimension.
    pub fn spatial_product(&self, dim: Dim) -> u64 {
        self.spatial
            .iter()
            .filter(|&&(d, _)| d == dim)
            .map(|&(_, b)| b)
            .product()
    }
}

/// A complete mapping: one [`NodeMapping`] per hierarchy node, outermost
/// first.
///
/// A mapping is *valid* for a hierarchy and workload shape when entry names
/// align with the hierarchy, spatial factors fit each node's mesh, all loop
/// bounds are non-zero, and the product of all factors of each dimension
/// covers the workload bound (padding — mapping more iterations than the
/// workload needs — is allowed and reduces utilization).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Mapping {
    entries: Vec<NodeMapping>,
}

impl Mapping {
    /// Creates a mapping from per-node entries.
    pub fn new(entries: Vec<NodeMapping>) -> Self {
        Mapping { entries }
    }

    /// An all-empty mapping aligned with `hierarchy` (useful as a builder
    /// starting point).
    pub fn empty_for(hierarchy: &Hierarchy) -> Self {
        Mapping {
            entries: hierarchy
                .nodes()
                .iter()
                .map(|n| NodeMapping::new(n.name()))
                .collect(),
        }
    }

    /// The per-node entries, outermost first.
    pub fn entries(&self) -> &[NodeMapping] {
        &self.entries
    }

    /// Mutable access to one entry by node name.
    pub fn entry_mut(&mut self, node: &str) -> Option<&mut NodeMapping> {
        self.entries.iter_mut().find(|e| e.node == node)
    }

    /// Entry lookup by node name.
    pub fn entry(&self, node: &str) -> Option<&NodeMapping> {
        self.entries.iter().find(|e| e.node == node)
    }

    /// The padded bound of a dimension: the product of every temporal and
    /// spatial factor of that dimension across all nodes.
    pub fn padded_bound(&self, dim: Dim) -> u64 {
        self.entries
            .iter()
            .map(|e| e.temporal_product(dim) * e.spatial_product(dim))
            .product()
    }

    /// Total padded MACs implied by the mapping.
    pub fn padded_macs(&self) -> u64 {
        Dim::ALL.iter().map(|&d| self.padded_bound(d)).product()
    }

    /// Total sequential steps: the product of every temporal factor. For a
    /// CiM macro this is the number of array activations per layer.
    pub fn temporal_steps(&self) -> u64 {
        self.entries
            .iter()
            .flat_map(|e| e.temporal.iter())
            .map(|&(_, b)| b)
            .product()
    }

    /// Validates the mapping against a hierarchy and workload shape.
    ///
    /// # Errors
    ///
    /// See [`MapError`] variants for each failure mode.
    pub fn validate(&self, hierarchy: &Hierarchy, shape: Shape) -> Result<(), MapError> {
        let nodes = hierarchy.nodes();
        if nodes.len() != self.entries.len() {
            return Err(MapError::LengthMismatch {
                hierarchy: nodes.len(),
                mapping: self.entries.len(),
            });
        }
        for (index, (node, entry)) in nodes.iter().zip(self.entries.iter()).enumerate() {
            if node.name() != entry.node {
                return Err(MapError::NameMismatch {
                    index,
                    expected: node.name().to_owned(),
                    found: entry.node.clone(),
                });
            }
            if entry
                .temporal
                .iter()
                .chain(entry.spatial.iter())
                .any(|&(_, b)| b == 0)
            {
                return Err(MapError::ZeroFactor {
                    node: entry.node.clone(),
                });
            }
            let used = entry.used_fanout();
            let mesh = node.spatial().fanout();
            if used > mesh {
                return Err(MapError::SpatialOverflow {
                    node: entry.node.clone(),
                    used,
                    mesh,
                });
            }
        }
        for dim in Dim::ALL {
            let mapped = self.padded_bound(dim);
            let required = shape.bound(dim);
            if mapped < required {
                return Err(MapError::Uncovered {
                    dim: dim.name(),
                    mapped,
                    required,
                });
            }
        }
        Ok(())
    }
}

impl std::fmt::Display for Mapping {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for entry in &self.entries {
            if entry.temporal.is_empty() && entry.spatial.is_empty() {
                continue;
            }
            write!(f, "{}:", entry.node)?;
            for &(d, b) in &entry.temporal {
                write!(f, " t{d}={b}")?;
            }
            for &(d, b) in &entry.spatial {
                write!(f, " s{d}={b}")?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cimloop_spec::{Component, Container, Reuse, Spatial, Tensor};

    fn hierarchy() -> Hierarchy {
        Hierarchy::builder()
            .component(
                Component::new("buffer")
                    .with_reuse(Tensor::Inputs, Reuse::Temporal)
                    .with_reuse(Tensor::Outputs, Reuse::Temporal),
            )
            .container(
                Container::new("column")
                    .with_spatial(Spatial::new(4, 1))
                    .with_spatial_reuse(Tensor::Inputs),
            )
            .component(
                Component::new("cell")
                    .with_reuse(Tensor::Weights, Reuse::Temporal)
                    .with_spatial(Spatial::new(1, 4))
                    .with_spatial_reuse(Tensor::Outputs),
            )
            .build()
            .unwrap()
    }

    fn shape() -> Shape {
        Shape::linear(2, 4, 4).unwrap() // N=2, K=4, C=4
    }

    fn valid_mapping() -> Mapping {
        Mapping::new(vec![
            NodeMapping::new("buffer").with_temporal(Dim::N, 2),
            NodeMapping::new("column").with_spatial(Dim::K, 4),
            NodeMapping::new("cell").with_spatial(Dim::C, 4),
        ])
    }

    #[test]
    fn valid_mapping_passes() {
        valid_mapping().validate(&hierarchy(), shape()).unwrap();
    }

    #[test]
    fn padded_bounds_and_macs() {
        let m = valid_mapping();
        assert_eq!(m.padded_bound(Dim::N), 2);
        assert_eq!(m.padded_bound(Dim::K), 4);
        assert_eq!(m.padded_bound(Dim::C), 4);
        assert_eq!(m.padded_macs(), 32);
        assert_eq!(m.temporal_steps(), 2);
    }

    #[test]
    fn length_mismatch_detected() {
        let m = Mapping::new(vec![NodeMapping::new("buffer")]);
        assert!(matches!(
            m.validate(&hierarchy(), shape()),
            Err(MapError::LengthMismatch { .. })
        ));
    }

    #[test]
    fn name_mismatch_detected() {
        let mut m = valid_mapping();
        m.entries[1].node = "wrong".into();
        assert!(matches!(
            m.validate(&hierarchy(), shape()),
            Err(MapError::NameMismatch { index: 1, .. })
        ));
    }

    #[test]
    fn spatial_overflow_detected() {
        let mut m = valid_mapping();
        m.entry_mut("column").unwrap().spatial = vec![(Dim::K, 8)];
        assert!(matches!(
            m.validate(&hierarchy(), shape()),
            Err(MapError::SpatialOverflow { .. })
        ));
    }

    #[test]
    fn uncovered_dimension_detected() {
        let mut m = valid_mapping();
        m.entry_mut("buffer").unwrap().temporal = vec![(Dim::N, 1)];
        assert!(matches!(
            m.validate(&hierarchy(), shape()),
            Err(MapError::Uncovered { dim: "N", .. })
        ));
    }

    #[test]
    fn zero_factor_detected() {
        let mut m = valid_mapping();
        m.entry_mut("buffer").unwrap().temporal = vec![(Dim::N, 0), (Dim::N, 2)];
        assert!(matches!(
            m.validate(&hierarchy(), shape()),
            Err(MapError::ZeroFactor { .. })
        ));
    }

    #[test]
    fn padding_is_allowed() {
        let mut m = valid_mapping();
        m.entry_mut("buffer").unwrap().temporal = vec![(Dim::N, 3)]; // N=2 padded to 3
        m.validate(&hierarchy(), shape()).unwrap();
        assert_eq!(m.padded_macs(), 48);
    }

    #[test]
    fn empty_for_aligns_with_hierarchy() {
        let m = Mapping::empty_for(&hierarchy());
        assert_eq!(m.entries().len(), 3);
        assert_eq!(m.entries()[0].node, "buffer");
        // Empty mapping fails coverage.
        assert!(m.validate(&hierarchy(), shape()).is_err());
    }

    #[test]
    fn display_lists_loops() {
        let text = valid_mapping().to_string();
        assert!(text.contains("buffer: tN=2"));
        assert!(text.contains("column: sK=4"));
    }
}
