use cimloop_spec::{Hierarchy, LevelKind, Node};
use cimloop_workload::{Dim, Shape};

use crate::{MapError, Mapping};

/// Which dataflow the canonical mapper targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Strategy {
    /// Weight-relevant loops outermost: weights stay resident while
    /// input/output loops iterate (the standard CiM dataflow — weights are
    /// pre-loaded into the array and reused across activations).
    #[default]
    WeightStationary,
    /// Output-relevant loops outermost: partial sums stay resident while
    /// weight/input loops iterate.
    OutputStationary,
}

/// Produces valid mappings of workload shapes onto container-hierarchies.
///
/// The mapper honors two per-node spec attributes:
///
/// - `spatial_dims` (e.g., `"C, R, S"`): which dimensions may be mapped
///   spatially across that node's mesh. Nodes with a mesh but no attribute
///   accept any dimension.
/// - `temporal_dims` (e.g., `"Is"`): dimensions whose remaining temporal
///   extent is sequenced at that node instead of at the outermost storage.
///
/// Spatial factors are assigned greedily from the innermost fanout node
/// outward; all remaining extents become temporal loops at the outermost
/// storage component, ordered by the chosen [`Strategy`].
///
/// # Example
///
/// See the crate-level example.
#[derive(Debug, Clone, Default)]
pub struct Mapper {
    strategy: Strategy,
}

impl Mapper {
    /// Creates a mapper with the given strategy.
    pub fn new(strategy: Strategy) -> Self {
        Mapper { strategy }
    }

    /// The mapper's strategy.
    pub fn strategy(&self) -> Strategy {
        self.strategy
    }

    /// Maps `shape` onto `hierarchy`, returning a validated mapping.
    ///
    /// # Errors
    ///
    /// Returns [`MapError::NoMappingFound`] if the hierarchy has no storage
    /// component to anchor temporal loops, or a validation error if the
    /// produced mapping is inconsistent (a bug — validated before return).
    pub fn map(&self, hierarchy: &Hierarchy, shape: Shape) -> Result<Mapping, MapError> {
        let mut remaining = shape.bounds();
        let mut mapping = Mapping::empty_for(hierarchy);

        // 1. Spatial assignment, innermost fanout node first.
        let node_count = hierarchy.len();
        for i in (0..node_count).rev() {
            let node = &hierarchy.nodes()[i];
            let mesh = node.spatial().fanout();
            if mesh <= 1 {
                continue;
            }
            let allowed = allowed_dims(node, "spatial_dims");
            let mut capacity = mesh;
            let entry = &mut mapping
                .entry_mut(node.name())
                .expect("mapping aligned with hierarchy");
            for dim in allowed {
                if capacity <= 1 {
                    break;
                }
                let extent = remaining[dim as usize];
                if extent <= 1 {
                    continue;
                }
                let factor = extent.min(capacity);
                entry.spatial.push((dim, factor));
                remaining[dim as usize] = extent.div_ceil(factor);
                capacity /= factor;
            }
        }

        // 2. Directed temporal placement (`temporal_dims`), innermost first.
        for i in (0..node_count).rev() {
            let node = &hierarchy.nodes()[i];
            if !node.attributes().contains("temporal_dims") {
                continue;
            }
            for dim in allowed_dims(node, "temporal_dims") {
                let extent = remaining[dim as usize];
                if extent > 1 {
                    mapping
                        .entry_mut(node.name())
                        .expect("aligned")
                        .temporal
                        .push((dim, extent));
                    remaining[dim as usize] = 1;
                }
            }
        }

        // 3. Everything left goes to the outermost storage, ordered by
        // strategy.
        let root = hierarchy
            .levels()
            .into_iter()
            .find(|l| l.kind() == LevelKind::Storage)
            .ok_or_else(|| MapError::NoMappingFound {
                reason: "hierarchy has no storage component to hold temporal loops".to_owned(),
            })?;
        let root_name = root.name().to_owned();
        let order = self.loop_order();
        let entry = mapping.entry_mut(&root_name).expect("aligned");
        for dim in order {
            let extent = remaining[dim as usize];
            if extent > 1 {
                entry.temporal.push((dim, extent));
                remaining[dim as usize] = 1;
            }
        }

        mapping.validate(hierarchy, shape)?;
        Ok(mapping)
    }

    /// Streams up to `limit` distinct valid mappings, obtained by permuting
    /// the temporal loop order at the outermost storage (each permutation
    /// changes refetch behaviour, hence energy), to `visit` as they are
    /// generated.
    ///
    /// This is the zero-materialization core of mapping-space exploration:
    /// one scratch [`Mapping`] is reused for every candidate, so evaluating
    /// thousands of permutations allocates nothing per candidate. `visit`
    /// returns `false` to stop early; the borrowed mapping must be cloned
    /// if it is to be kept. Returns the number of candidates visited
    /// (0 when `limit == 0`).
    ///
    /// # Errors
    ///
    /// Propagates [`Self::map`] errors — including at `limit == 0`, so the
    /// error surface is uniform across limits.
    pub fn stream(
        &self,
        hierarchy: &Hierarchy,
        shape: Shape,
        limit: usize,
        mut visit: impl FnMut(&Mapping) -> bool,
    ) -> Result<usize, MapError> {
        let base = self.map(hierarchy, shape)?;
        if limit == 0 {
            return Ok(0);
        }
        let root = hierarchy
            .levels()
            .into_iter()
            .find(|l| l.kind() == LevelKind::Storage)
            .expect("map() succeeded, so a storage root exists");
        let root_name = root.name().to_owned();
        let loops = base.entry(&root_name).expect("aligned").temporal.clone();

        let mut scratch = base;
        let mut visited = 0usize;
        permute(&loops, &mut Vec::new(), &mut |perm| {
            if visited >= limit {
                return false;
            }
            let entry = scratch.entry_mut(&root_name).expect("aligned");
            entry.temporal.clear();
            entry.temporal.extend_from_slice(perm);
            visited += 1;
            visit(&scratch)
        });
        Ok(visited)
    }

    /// Generates up to `limit` distinct valid mappings by permuting the
    /// temporal loop order at the outermost storage. A `limit` of zero
    /// yields an empty vector.
    ///
    /// Materializes every candidate; prefer [`Self::stream`] or
    /// [`Self::search`] when candidates are consumed one at a time.
    ///
    /// # Errors
    ///
    /// Propagates [`Self::map`] errors.
    pub fn enumerate(
        &self,
        hierarchy: &Hierarchy,
        shape: Shape,
        limit: usize,
    ) -> Result<Vec<Mapping>, MapError> {
        let mut result = Vec::new();
        self.stream(hierarchy, shape, limit, |m| {
            result.push(m.clone());
            true
        })?;
        Ok(result)
    }

    /// Searches up to `limit` streamed mappings and returns the one
    /// minimizing `cost` (e.g., energy from an amortized per-action table),
    /// together with its cost. This is the paper's mapping-search loop:
    /// thousands of mappings evaluated against one precomputed energy
    /// table. Candidates are evaluated as they are generated; only a new
    /// best mapping is cloned.
    ///
    /// # Errors
    ///
    /// Propagates [`Self::map`] errors; returns
    /// [`MapError::NoMappingFound`] if `cost` returns `None` for every
    /// candidate (e.g., capacity violations) or `limit` is zero.
    pub fn search(
        &self,
        hierarchy: &Hierarchy,
        shape: Shape,
        limit: usize,
        mut cost: impl FnMut(&Mapping) -> Option<f64>,
    ) -> Result<(Mapping, f64), MapError> {
        let mut best: Option<(Mapping, f64)> = None;
        let visited = self.stream(hierarchy, shape, limit, |mapping| {
            if let Some(c) = cost(mapping) {
                if best.as_ref().map(|(_, b)| c < *b).unwrap_or(true) {
                    best = Some((mapping.clone(), c));
                }
            }
            true
        })?;
        best.ok_or_else(|| MapError::NoMappingFound {
            reason: if visited == 0 {
                "candidate limit is zero; no mappings were generated".to_owned()
            } else {
                format!("cost function rejected all {visited} streamed mappings")
            },
        })
    }

    fn loop_order(&self) -> [Dim; 9] {
        match self.strategy {
            // Weight-relevant dims outermost; input slices innermost so
            // bit-serial streaming is the innermost sequencing.
            Strategy::WeightStationary => [
                Dim::Ws,
                Dim::K,
                Dim::C,
                Dim::R,
                Dim::S,
                Dim::N,
                Dim::P,
                Dim::Q,
                Dim::Is,
            ],
            Strategy::OutputStationary => [
                Dim::N,
                Dim::K,
                Dim::P,
                Dim::Q,
                Dim::Ws,
                Dim::C,
                Dim::R,
                Dim::S,
                Dim::Is,
            ],
        }
    }
}

/// Parses a dim-list attribute such as `spatial_dims: "C, R, S"`. A missing
/// attribute allows every dimension (in canonical order).
fn allowed_dims(node: &Node, key: &str) -> Vec<Dim> {
    match node.attributes().str(key) {
        Some(list) => list
            .split([',', ' '])
            .filter(|s| !s.is_empty())
            .filter_map(Dim::parse)
            .collect(),
        None => Dim::ALL.to_vec(),
    }
}

/// Generates permutations of `items`, calling `visit` for each; `visit`
/// returns `false` to stop early.
fn permute<T: Clone>(
    items: &[T],
    prefix: &mut Vec<T>,
    visit: &mut impl FnMut(&[T]) -> bool,
) -> bool {
    if items.is_empty() {
        return visit(prefix);
    }
    for i in 0..items.len() {
        let mut rest = items.to_vec();
        let item = rest.remove(i);
        prefix.push(item);
        let keep_going = permute(&rest, prefix, visit);
        prefix.pop();
        if !keep_going {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze;
    use cimloop_spec::{Component, Container, Reuse, Spatial, Tensor};

    fn cim_hierarchy(rows: u64, cols: u64) -> Hierarchy {
        Hierarchy::builder()
            .component(
                Component::new("buffer")
                    .with_reuse(Tensor::Inputs, Reuse::Temporal)
                    .with_reuse(Tensor::Outputs, Reuse::Temporal)
                    .with_attr("temporal_dims", "Is"),
            )
            .container(Container::new("macro"))
            .component(Component::new("DAC").with_reuse(Tensor::Inputs, Reuse::NoCoalesce))
            .container(
                Container::new("column")
                    .with_spatial(Spatial::new(cols, 1))
                    .with_spatial_reuse(Tensor::Inputs)
                    .with_attr("spatial_dims", "K, Ws"),
            )
            .component(Component::new("ADC").with_reuse(Tensor::Outputs, Reuse::NoCoalesce))
            .component(
                Component::new("cell")
                    .with_reuse(Tensor::Weights, Reuse::Temporal)
                    .with_spatial(Spatial::new(1, rows))
                    .with_spatial_reuse(Tensor::Outputs)
                    .with_attr("spatial_dims", "C, R, S"),
            )
            .build()
            .unwrap()
    }

    #[test]
    fn canonical_mapping_fills_array() {
        let h = cim_hierarchy(64, 64);
        let shape = Shape::linear(16, 64, 64).unwrap();
        let m = Mapper::new(Strategy::WeightStationary)
            .map(&h, shape)
            .unwrap();
        assert_eq!(m.entry("cell").unwrap().spatial_product(Dim::C), 64);
        assert_eq!(m.entry("column").unwrap().spatial_product(Dim::K), 64);
        assert_eq!(m.entry("buffer").unwrap().temporal_product(Dim::N), 16);
        let r = analyze(&h, shape, &m).unwrap();
        assert!((r.utilization() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn oversized_workload_spills_to_temporal() {
        let h = cim_hierarchy(64, 64);
        let shape = Shape::linear(4, 256, 128).unwrap();
        let m = Mapper::default().map(&h, shape).unwrap();
        // C=128 on 64 rows: 64 spatial × 2 temporal.
        assert_eq!(m.entry("cell").unwrap().spatial_product(Dim::C), 64);
        assert_eq!(m.padded_bound(Dim::C), 128);
        // K=256 on 64 columns: 64 spatial × 4 temporal.
        assert_eq!(m.padded_bound(Dim::K), 256);
        let r = analyze(&h, shape, &m).unwrap();
        assert!((r.utilization() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn small_workload_underutilizes() {
        let h = cim_hierarchy(64, 64);
        let shape = Shape::linear(4, 16, 16).unwrap();
        let m = Mapper::default().map(&h, shape).unwrap();
        let r = analyze(&h, shape, &m).unwrap();
        assert!((r.spatial_utilization() - (16.0 * 16.0) / (64.0 * 64.0)).abs() < 1e-9);
    }

    #[test]
    fn weight_slices_map_to_columns() {
        let h = cim_hierarchy(64, 64);
        let shape = Shape::linear(4, 64, 64).unwrap().with_slices(8, 2).unwrap();
        let m = Mapper::default().map(&h, shape).unwrap();
        // Columns fit K=64 first, then Ws has no room; Ws falls to temporal.
        assert_eq!(m.padded_bound(Dim::Ws), 2);
        // Is is directed to the buffer by `temporal_dims`.
        assert_eq!(m.entry("buffer").unwrap().temporal_product(Dim::Is), 8);
        let r = analyze(&h, shape, &m).unwrap();
        assert_eq!(r.actual_macs(), shape.macs());
    }

    #[test]
    fn spatial_dims_constraint_respected() {
        let h = cim_hierarchy(64, 64);
        // Only C, R, S allowed on rows: K never lands there.
        let shape = Shape::conv(128, 16, 8, 8, 3, 3).unwrap();
        let m = Mapper::default().map(&h, shape).unwrap();
        let cell = m.entry("cell").unwrap();
        assert_eq!(cell.spatial_product(Dim::K), 1);
        assert!(cell.spatial_product(Dim::C) * cell.spatial_product(Dim::R) <= 64);
    }

    #[test]
    fn strategies_change_loop_order() {
        let h = cim_hierarchy(8, 8);
        let shape = Shape::conv(16, 16, 4, 4, 1, 1).unwrap();
        let ws = Mapper::new(Strategy::WeightStationary)
            .map(&h, shape)
            .unwrap();
        let os = Mapper::new(Strategy::OutputStationary)
            .map(&h, shape)
            .unwrap();
        let first_ws = ws.entry("buffer").unwrap().temporal[0].0;
        let first_os = os.entry("buffer").unwrap().temporal[0].0;
        assert_ne!(ws, os);
        // Weight-stationary leads with a weight dim, output-stationary with
        // an output dim.
        assert!(matches!(
            first_ws,
            Dim::K | Dim::C | Dim::R | Dim::S | Dim::Ws
        ));
        assert!(matches!(first_os, Dim::N | Dim::K | Dim::P | Dim::Q));
    }

    #[test]
    fn weight_stationary_beats_thrashing_on_weight_fills() {
        let h = cim_hierarchy(16, 16);
        let shape = Shape::linear(32, 64, 64).unwrap();
        let ws = Mapper::new(Strategy::WeightStationary)
            .map(&h, shape)
            .unwrap();
        let os = Mapper::new(Strategy::OutputStationary)
            .map(&h, shape)
            .unwrap();
        let ws_fills = analyze(&h, shape, &ws)
            .unwrap()
            .actions("cell", Tensor::Weights)
            .writes;
        let os_fills = analyze(&h, shape, &os)
            .unwrap()
            .actions("cell", Tensor::Weights)
            .writes;
        assert!(ws_fills <= os_fills, "ws {ws_fills} vs os {os_fills}");
    }

    #[test]
    fn enumerate_yields_distinct_valid_mappings() {
        let h = cim_hierarchy(16, 16);
        let shape = Shape::conv(32, 32, 8, 8, 3, 3).unwrap();
        let mappings = Mapper::default().enumerate(&h, shape, 100).unwrap();
        assert!(mappings.len() > 10, "got {}", mappings.len());
        assert!(mappings.len() <= 100);
        for m in &mappings {
            m.validate(&h, shape).unwrap();
        }
        // All permutations are distinct.
        for (i, a) in mappings.iter().enumerate() {
            for b in &mappings[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }

    #[test]
    fn enumerate_respects_limit_and_small_spaces() {
        let h = cim_hierarchy(64, 64);
        // Everything fits spatially: at most one root loop.
        let shape = Shape::linear(1, 64, 64).unwrap();
        let mappings = Mapper::default().enumerate(&h, shape, 50).unwrap();
        assert!(!mappings.is_empty());
        assert!(mappings.len() <= 50);
    }

    #[test]
    fn zero_limit_yields_no_candidates() {
        let h = cim_hierarchy(16, 16);
        let shape = Shape::conv(32, 32, 8, 8, 3, 3).unwrap();
        // The old fallback pushed the base mapping even at limit == 0.
        assert!(Mapper::default()
            .enumerate(&h, shape, 0)
            .unwrap()
            .is_empty());
        let mut visited = 0;
        let n = Mapper::default()
            .stream(&h, shape, 0, |_| {
                visited += 1;
                true
            })
            .unwrap();
        assert_eq!(n, 0);
        assert_eq!(visited, 0);
        // And search over zero candidates is a NoMappingFound error, not a
        // silently-returned base mapping.
        assert!(matches!(
            Mapper::default().search(&h, shape, 0, |_| Some(1.0)),
            Err(MapError::NoMappingFound { .. })
        ));
        // Invalid inputs still error at limit == 0 (uniform error surface).
        let no_storage = Hierarchy::builder()
            .component(Component::new("DAC").with_reuse(Tensor::Inputs, Reuse::NoCoalesce))
            .build()
            .unwrap();
        assert!(Mapper::default().enumerate(&no_storage, shape, 0).is_err());
    }

    #[test]
    fn stream_matches_enumerate_order_and_count() {
        let h = cim_hierarchy(16, 16);
        let shape = Shape::conv(32, 32, 8, 8, 3, 3).unwrap();
        let mapper = Mapper::default();
        let materialized = mapper.enumerate(&h, shape, 40).unwrap();
        let mut streamed = Vec::new();
        let n = mapper
            .stream(&h, shape, 40, |m| {
                streamed.push(m.clone());
                true
            })
            .unwrap();
        assert_eq!(n, streamed.len());
        assert_eq!(materialized, streamed);
    }

    #[test]
    fn stream_early_stop_respects_visitor() {
        let h = cim_hierarchy(16, 16);
        let shape = Shape::conv(32, 32, 8, 8, 3, 3).unwrap();
        let mut seen = 0usize;
        let n = Mapper::default()
            .stream(&h, shape, 100, |_| {
                seen += 1;
                seen < 5
            })
            .unwrap();
        assert_eq!(n, 5);
        assert_eq!(seen, 5);
    }

    #[test]
    fn search_finds_minimum_cost_mapping() {
        let h = cim_hierarchy(16, 16);
        let shape = Shape::conv(32, 32, 8, 8, 3, 3).unwrap();
        // Cost: weight fills at the cells (prefers weight-stationary order).
        let cost = |m: &Mapping| {
            analyze(&h, shape, m)
                .ok()
                .map(|c| c.actions("cell", cimloop_spec::Tensor::Weights).writes)
        };
        let (best, best_cost) = Mapper::default().search(&h, shape, 50, cost).unwrap();
        // The winner is at least as good as every enumerated candidate.
        for m in Mapper::default().enumerate(&h, shape, 50).unwrap() {
            let c = analyze(&h, shape, &m)
                .unwrap()
                .actions("cell", cimloop_spec::Tensor::Weights)
                .writes;
            assert!(best_cost <= c + 1e-9);
        }
        best.validate(&h, shape).unwrap();
    }

    #[test]
    fn search_rejecting_everything_errors() {
        let h = cim_hierarchy(8, 8);
        let shape = Shape::linear(2, 8, 8).unwrap();
        let result = Mapper::default().search(&h, shape, 10, |_| None);
        assert!(matches!(result, Err(MapError::NoMappingFound { .. })));
    }

    #[test]
    fn no_storage_root_is_an_error() {
        let h = Hierarchy::builder()
            .component(Component::new("DAC").with_reuse(Tensor::Inputs, Reuse::NoCoalesce))
            .build()
            .unwrap();
        let shape = Shape::linear(2, 2, 2).unwrap();
        assert!(matches!(
            Mapper::default().map(&h, shape),
            Err(MapError::NoMappingFound { .. })
        ));
    }
}
