//! Property-based tests for the dataflow invariants of the paper’s action-count model (PAPER.md §III).

use cimloop_map::{analyze, Mapper, Strategy as MapStrategy};
use cimloop_spec::{Component, Container, Hierarchy, Reuse, Spatial, Tensor};
use cimloop_workload::Shape;
use proptest::prelude::*;

fn cim_hierarchy(rows: u64, cols: u64, multicast_inputs: bool) -> Hierarchy {
    let mut column = Container::new("column")
        .with_spatial(Spatial::new(cols, 1))
        .with_attr("spatial_dims", "K, Ws");
    if multicast_inputs {
        column = column.with_spatial_reuse(Tensor::Inputs);
    }
    Hierarchy::builder()
        .component(
            Component::new("buffer")
                .with_reuse(Tensor::Inputs, Reuse::Temporal)
                .with_reuse(Tensor::Outputs, Reuse::Temporal)
                .with_attr("temporal_dims", "Is"),
        )
        .container(Container::new("macro"))
        .component(Component::new("dac").with_reuse(Tensor::Inputs, Reuse::NoCoalesce))
        .container(column)
        .component(Component::new("adc").with_reuse(Tensor::Outputs, Reuse::NoCoalesce))
        .component(
            Component::new("cell")
                .with_reuse(Tensor::Weights, Reuse::Temporal)
                .with_spatial(Spatial::new(1, rows))
                .with_spatial_reuse(Tensor::Outputs)
                .with_attr("spatial_dims", "C, R, S")
                .with_attr("slice_storage", true),
        )
        .build()
        .expect("valid hierarchy")
}

fn arb_shape() -> impl Strategy<Value = Shape> {
    (
        1u64..6,
        1u64..48,
        1u64..48,
        1u64..6,
        1u64..6,
        1u64..4,
        1u64..4,
    )
        .prop_map(|(n, k, c, p, q, r, s)| Shape::new(n, k, c, p, q, r, s).expect("non-zero bounds"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn mapper_covers_any_shape(shape in arb_shape(), rows in 1u64..64, cols in 1u64..64) {
        let h = cim_hierarchy(rows.max(1), cols.max(1), true);
        let mapping = Mapper::new(MapStrategy::WeightStationary).map(&h, shape).expect("mapping");
        mapping.validate(&h, shape).expect("valid");
        let counts = analyze(&h, shape, &mapping).expect("analysis");
        // MAC conservation: useful MACs equal the workload's.
        prop_assert_eq!(counts.actual_macs(), shape.macs());
        // Padding only adds work.
        prop_assert!(counts.padded_macs() >= shape.slice_macs());
        prop_assert!(counts.utilization() <= 1.0 + 1e-12);
        prop_assert!(counts.spatial_utilization() <= 1.0 + 1e-12);
    }

    #[test]
    fn cell_reads_equal_padded_macs(shape in arb_shape()) {
        let h = cim_hierarchy(16, 16, true);
        let mapping = Mapper::default().map(&h, shape).expect("mapping");
        let counts = analyze(&h, shape, &mapping).expect("analysis");
        // Every slice-granular MAC event reads one cell.
        prop_assert!((counts.actions("cell", Tensor::Weights).reads
            - counts.padded_macs() as f64).abs() < 1e-6);
    }

    #[test]
    fn multicast_never_increases_converter_traffic(shape in arb_shape()) {
        let with = cim_hierarchy(16, 16, true);
        let without = cim_hierarchy(16, 16, false);
        let m_with = Mapper::default().map(&with, shape).expect("mapping");
        let m_without = Mapper::default().map(&without, shape).expect("mapping");
        let dac_with = analyze(&with, shape, &m_with)
            .expect("analysis")
            .actions("dac", Tensor::Inputs)
            .reads;
        let dac_without = analyze(&without, shape, &m_without)
            .expect("analysis")
            .actions("dac", Tensor::Inputs)
            .reads;
        prop_assert!(dac_with <= dac_without + 1e-6);
    }

    #[test]
    fn all_action_counts_non_negative_and_finite(shape in arb_shape()) {
        let h = cim_hierarchy(8, 24, true);
        let mapping = Mapper::default().map(&h, shape).expect("mapping");
        let counts = analyze(&h, shape, &mapping).expect("analysis");
        for (name, per_tensor) in counts.iter() {
            for actions in per_tensor {
                prop_assert!(actions.reads.is_finite() && actions.reads >= 0.0, "{name}");
                prop_assert!(actions.writes.is_finite() && actions.writes >= 0.0, "{name}");
            }
        }
        for t in Tensor::ALL {
            prop_assert!(counts.external_traffic(t) >= 0.0);
        }
    }

    #[test]
    fn buffer_serves_at_least_its_fills(shape in arb_shape()) {
        // Traffic monotonicity: a storage cannot be filled more often than
        // the demand it serves plus final drains.
        let h = cim_hierarchy(16, 16, true);
        let mapping = Mapper::default().map(&h, shape).expect("mapping");
        let counts = analyze(&h, shape, &mapping).expect("analysis");
        let inputs = counts.actions("buffer", Tensor::Inputs);
        prop_assert!(inputs.writes <= inputs.reads + 1e-6,
            "fills {} > serves {}", inputs.writes, inputs.reads);
    }

    #[test]
    fn enumerated_mappings_share_action_totals_for_cells(shape in arb_shape()) {
        // Cell MAC reads are mapping-invariant (every mapping performs the
        // same padded compute when spatial factors are identical).
        let h = cim_hierarchy(16, 16, true);
        let mappings = Mapper::default().enumerate(&h, shape, 6).expect("mappings");
        let reads: Vec<f64> = mappings
            .iter()
            .map(|m| analyze(&h, shape, m).expect("analysis").actions("cell", Tensor::Weights).reads)
            .collect();
        for r in &reads {
            prop_assert!((r - reads[0]).abs() < 1e-6);
        }
    }
}
