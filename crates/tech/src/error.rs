use std::error::Error;
use std::fmt;

/// Error raised by technology-model constructors and lookups.
#[derive(Debug, Clone, PartialEq)]
pub enum TechError {
    /// The requested feature size does not correspond to a known node.
    UnknownNode {
        /// Requested feature size in nanometers.
        nm: f64,
    },
    /// A physical parameter was outside its valid range.
    InvalidParameter {
        /// Which parameter was invalid.
        name: &'static str,
        /// Human-readable description of the constraint that was violated.
        reason: &'static str,
    },
}

impl fmt::Display for TechError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TechError::UnknownNode { nm } => {
                write!(f, "no technology node with feature size {nm} nm")
            }
            TechError::InvalidParameter { name, reason } => {
                write!(f, "invalid parameter `{name}`: {reason}")
            }
        }
    }
}

impl Error for TechError {}
