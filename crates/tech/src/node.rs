use crate::TechError;

/// A CMOS process node.
///
/// Covers the nodes used by the macros the paper models (Table III:
/// 65 nm Macro A, 7 nm Macro B, 130 nm Macro C, 22 nm Macro D) plus the
/// intermediate nodes needed for scaling studies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[allow(missing_docs)]
pub enum TechNode {
    N180,
    N130,
    N90,
    N65,
    N45,
    N32,
    N22,
    N16,
    N14,
    N10,
    N7,
}

impl TechNode {
    /// All known nodes, largest feature size first.
    pub const ALL: [TechNode; 11] = [
        TechNode::N180,
        TechNode::N130,
        TechNode::N90,
        TechNode::N65,
        TechNode::N45,
        TechNode::N32,
        TechNode::N22,
        TechNode::N16,
        TechNode::N14,
        TechNode::N10,
        TechNode::N7,
    ];

    /// Feature size in nanometers.
    pub fn nm(self) -> f64 {
        match self {
            TechNode::N180 => 180.0,
            TechNode::N130 => 130.0,
            TechNode::N90 => 90.0,
            TechNode::N65 => 65.0,
            TechNode::N45 => 45.0,
            TechNode::N32 => 32.0,
            TechNode::N22 => 22.0,
            TechNode::N16 => 16.0,
            TechNode::N14 => 14.0,
            TechNode::N10 => 10.0,
            TechNode::N7 => 7.0,
        }
    }

    /// Nominal supply voltage for the node, in volts.
    ///
    /// Values follow the typical foundry nominals used by the Stillmaker &
    /// Baas scaling tables.
    pub fn nominal_vdd(self) -> f64 {
        match self {
            TechNode::N180 => 1.8,
            TechNode::N130 => 1.3,
            TechNode::N90 => 1.2,
            TechNode::N65 => 1.1,
            TechNode::N45 => 1.0,
            TechNode::N32 => 0.9,
            TechNode::N22 => 0.8,
            TechNode::N16 => 0.8,
            TechNode::N14 => 0.8,
            TechNode::N10 => 0.75,
            TechNode::N7 => 0.7,
        }
    }

    /// Typical threshold voltage for the node, in volts.
    ///
    /// Used by the alpha-power-law delay model; roughly `0.35 × V_dd`.
    pub fn threshold_voltage(self) -> f64 {
        0.35 * self.nominal_vdd()
    }

    /// Looks up the node whose feature size matches `nm`.
    ///
    /// # Errors
    ///
    /// Returns [`TechError::UnknownNode`] if no node matches within 0.5 nm.
    pub fn from_nm(nm: f64) -> Result<Self, TechError> {
        Self::ALL
            .into_iter()
            .find(|n| (n.nm() - nm).abs() < 0.5)
            .ok_or(TechError::UnknownNode { nm })
    }
}

impl std::fmt::Display for TechNode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}nm", self.nm())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_nm_round_trips() {
        for node in TechNode::ALL {
            assert_eq!(TechNode::from_nm(node.nm()).unwrap(), node);
        }
    }

    #[test]
    fn from_nm_rejects_unknown() {
        assert!(matches!(
            TechNode::from_nm(100.0),
            Err(TechError::UnknownNode { .. })
        ));
    }

    #[test]
    fn vdd_monotonically_decreases_with_feature_size() {
        for pair in TechNode::ALL.windows(2) {
            assert!(pair[0].nominal_vdd() >= pair[1].nominal_vdd());
        }
    }

    #[test]
    fn threshold_below_supply() {
        for node in TechNode::ALL {
            assert!(node.threshold_voltage() < node.nominal_vdd());
        }
    }

    #[test]
    fn display_formats_nm() {
        assert_eq!(TechNode::N7.to_string(), "7nm");
        assert_eq!(TechNode::N130.to_string(), "130nm");
    }
}
