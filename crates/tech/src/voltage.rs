use crate::{TechError, TechNode};

/// Supply-voltage scaling model (alpha-power law).
///
/// The paper validates macro energy/throughput across supply-voltage sweeps
/// (Fig 7: Macro A at 0.85/1.2 V, Macro B at 0.8/1.0 V, Macro D at
/// 0.7/0.9/1.1 V). Dynamic energy scales as `V²`; delay follows the
/// alpha-power law `t ∝ V / (V − V_t)^α` with `α ≈ 1.3` for modern CMOS,
/// so throughput falls sharply as `V` approaches `V_t`.
///
/// # Example
///
/// ```
/// use cimloop_tech::{TechNode, VoltageScale};
///
/// # fn main() -> Result<(), cimloop_tech::TechError> {
/// let vs = VoltageScale::for_node(TechNode::N22)?;
/// // Lowering the supply saves energy but costs speed.
/// assert!(vs.energy_factor(0.7)? < 1.0);
/// assert!(vs.frequency_factor(0.7)? < 1.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VoltageScale {
    vdd_nominal: f64,
    vth: f64,
    alpha: f64,
}

impl VoltageScale {
    /// Default velocity-saturation exponent for modern CMOS.
    pub const DEFAULT_ALPHA: f64 = 1.3;

    /// Creates a model with explicit nominal supply and threshold voltages.
    ///
    /// # Errors
    ///
    /// Returns [`TechError::InvalidParameter`] unless
    /// `0 < vth < vdd_nominal` and `alpha > 0`.
    pub fn new(vdd_nominal: f64, vth: f64, alpha: f64) -> Result<Self, TechError> {
        if !(vdd_nominal.is_finite() && vdd_nominal > 0.0) {
            return Err(TechError::InvalidParameter {
                name: "vdd_nominal",
                reason: "must be positive and finite",
            });
        }
        if !(vth.is_finite() && vth > 0.0 && vth < vdd_nominal) {
            return Err(TechError::InvalidParameter {
                name: "vth",
                reason: "must satisfy 0 < vth < vdd_nominal",
            });
        }
        if !(alpha.is_finite() && alpha > 0.0) {
            return Err(TechError::InvalidParameter {
                name: "alpha",
                reason: "must be positive and finite",
            });
        }
        Ok(VoltageScale {
            vdd_nominal,
            vth,
            alpha,
        })
    }

    /// Creates the model for a node's nominal supply and threshold.
    ///
    /// # Errors
    ///
    /// Never fails for the built-in nodes; the `Result` mirrors [`Self::new`].
    pub fn for_node(node: TechNode) -> Result<Self, TechError> {
        Self::new(
            node.nominal_vdd(),
            node.threshold_voltage(),
            Self::DEFAULT_ALPHA,
        )
    }

    /// The nominal supply voltage this model is normalized to.
    pub fn vdd_nominal(&self) -> f64 {
        self.vdd_nominal
    }

    /// The threshold voltage.
    pub fn vth(&self) -> f64 {
        self.vth
    }

    /// Dynamic-energy multiplier at supply `v` relative to nominal: `(v/V_nom)²`.
    ///
    /// # Errors
    ///
    /// Returns [`TechError::InvalidParameter`] if `v` is not positive/finite.
    pub fn energy_factor(&self, v: f64) -> Result<f64, TechError> {
        self.check_v(v)?;
        Ok((v / self.vdd_nominal).powi(2))
    }

    /// Delay multiplier at supply `v` relative to nominal (alpha-power law).
    ///
    /// # Errors
    ///
    /// Returns [`TechError::InvalidParameter`] if `v ≤ V_t` (the circuit
    /// would not switch) or `v` is not finite.
    pub fn delay_factor(&self, v: f64) -> Result<f64, TechError> {
        self.check_v(v)?;
        if v <= self.vth {
            return Err(TechError::InvalidParameter {
                name: "v",
                reason: "supply must exceed the threshold voltage",
            });
        }
        let nominal = self.vdd_nominal / (self.vdd_nominal - self.vth).powf(self.alpha);
        let at_v = v / (v - self.vth).powf(self.alpha);
        Ok(at_v / nominal)
    }

    /// Frequency multiplier at supply `v` relative to nominal (inverse delay).
    ///
    /// # Errors
    ///
    /// Same conditions as [`Self::delay_factor`].
    pub fn frequency_factor(&self, v: f64) -> Result<f64, TechError> {
        Ok(1.0 / self.delay_factor(v)?)
    }

    fn check_v(&self, v: f64) -> Result<(), TechError> {
        if !(v.is_finite() && v > 0.0) {
            return Err(TechError::InvalidParameter {
                name: "v",
                reason: "supply voltage must be positive and finite",
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> VoltageScale {
        VoltageScale::new(1.0, 0.35, 1.3).unwrap()
    }

    #[test]
    fn nominal_factors_are_one() {
        let m = model();
        assert!((m.energy_factor(1.0).unwrap() - 1.0).abs() < 1e-12);
        assert!((m.delay_factor(1.0).unwrap() - 1.0).abs() < 1e-12);
        assert!((m.frequency_factor(1.0).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn energy_is_quadratic_in_v() {
        let m = model();
        assert!((m.energy_factor(0.5).unwrap() - 0.25).abs() < 1e-12);
        assert!((m.energy_factor(2.0).unwrap() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn delay_grows_near_threshold() {
        let m = model();
        let d1 = m.delay_factor(0.9).unwrap();
        let d2 = m.delay_factor(0.5).unwrap();
        let d3 = m.delay_factor(0.4).unwrap();
        assert!(d1 < d2 && d2 < d3);
    }

    #[test]
    fn overdrive_speeds_up() {
        let m = model();
        assert!(m.frequency_factor(1.2).unwrap() > 1.0);
    }

    #[test]
    fn rejects_subthreshold_supply() {
        let m = model();
        assert!(m.delay_factor(0.3).is_err());
        assert!(m.delay_factor(0.35).is_err());
    }

    #[test]
    fn constructor_validates() {
        assert!(VoltageScale::new(0.0, 0.3, 1.3).is_err());
        assert!(VoltageScale::new(1.0, 1.2, 1.3).is_err());
        assert!(VoltageScale::new(1.0, 0.3, 0.0).is_err());
        assert!(VoltageScale::new(1.0, 0.3, 1.3).is_ok());
    }

    #[test]
    fn for_node_uses_node_nominals() {
        let m = VoltageScale::for_node(TechNode::N7).unwrap();
        assert!((m.vdd_nominal() - 0.7).abs() < 1e-12);
    }
}
