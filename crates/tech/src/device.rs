//! Device-level models: the components forming each memory cell
//! (paper §II-B "Devices" level of the CiM stack).
//!
//! Published macros store weights in SRAM (Macros A, B, D), ReRAM (Macro C),
//! or DRAM; these models provide the per-device area and per-event energy
//! that the circuit plug-ins aggregate. Energies are value-dependent where
//! the physics is: ReRAM read energy is `G · V² · t_read` (paper Algorithm 1),
//! capacitor switching is `C · ΔV²`.

use crate::{TechError, TechNode};

/// A 6T SRAM bitcell.
///
/// # Example
///
/// ```
/// use cimloop_tech::device::SramBitcell;
/// use cimloop_tech::TechNode;
///
/// let cell = SramBitcell::new(TechNode::N7);
/// assert!(cell.area() > 0.0);
/// assert!(cell.read_energy(0.8) > 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SramBitcell {
    node: TechNode,
    area_f2: f64,
    cell_capacitance: f64,
}

impl SramBitcell {
    /// Typical 6T bitcell area in F² (feature sizes squared).
    pub const DEFAULT_AREA_F2: f64 = 150.0;

    /// Per-cell switched capacitance seen on a read, in farads.
    ///
    /// Dominated by the cell's share of bitline capacitance; scaled with the
    /// node when constructing via [`Self::new`].
    pub const REF_CELL_CAP_45NM: f64 = 0.08e-15;

    /// Creates a bitcell at `node` with default geometry.
    pub fn new(node: TechNode) -> Self {
        SramBitcell {
            node,
            area_f2: Self::DEFAULT_AREA_F2,
            cell_capacitance: Self::REF_CELL_CAP_45NM * (node.nm() / TechNode::N45.nm()),
        }
    }

    /// Creates a bitcell with an explicit area (in F²) and capacitance.
    ///
    /// # Errors
    ///
    /// Returns [`TechError::InvalidParameter`] for non-positive values.
    pub fn with_geometry(
        node: TechNode,
        area_f2: f64,
        cell_capacitance: f64,
    ) -> Result<Self, TechError> {
        if !(area_f2.is_finite() && area_f2 > 0.0) {
            return Err(TechError::InvalidParameter {
                name: "area_f2",
                reason: "must be positive and finite",
            });
        }
        if !(cell_capacitance.is_finite() && cell_capacitance > 0.0) {
            return Err(TechError::InvalidParameter {
                name: "cell_capacitance",
                reason: "must be positive and finite",
            });
        }
        Ok(SramBitcell {
            node,
            area_f2,
            cell_capacitance,
        })
    }

    /// The process node.
    pub fn node(&self) -> TechNode {
        self.node
    }

    /// Cell area in m².
    pub fn area(&self) -> f64 {
        let f = self.node.nm() * 1e-9;
        self.area_f2 * f * f
    }

    /// Energy of one read access at supply `vdd`, in joules: `C · V²`.
    pub fn read_energy(&self, vdd: f64) -> f64 {
        self.cell_capacitance * vdd * vdd
    }

    /// Energy of one write access at supply `vdd`, in joules.
    ///
    /// Writes flip the cross-coupled pair, costing roughly 1.5× a read.
    pub fn write_energy(&self, vdd: f64) -> f64 {
        1.5 * self.read_energy(vdd)
    }

    /// Static leakage power at supply `vdd`, in watts.
    pub fn leakage_power(&self, vdd: f64) -> f64 {
        // ~10 pA/cell at nominal conditions, linear in V for a simple model.
        10e-12 * vdd
    }
}

/// A resistive RAM (ReRAM / memristor) cell storing an analog conductance.
///
/// Multiply-accumulate happens in the analog domain: applying voltage `V`
/// for `t_read` through conductance `G` draws energy `G · V² · t_read`
/// — exactly the worked example in the paper's Algorithm 1.
///
/// # Example
///
/// ```
/// use cimloop_tech::device::ReramCell;
///
/// # fn main() -> Result<(), cimloop_tech::TechError> {
/// let cell = ReramCell::new(1e-6, 100e-6, 0.3, 10e-9)?;
/// // Max-conductance cell at full read voltage.
/// let e = cell.read_energy(cell.g_max(), cell.v_read());
/// assert!(e > 0.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReramCell {
    g_min: f64,
    g_max: f64,
    v_read: f64,
    t_read: f64,
}

impl ReramCell {
    /// Creates a cell with conductance range `[g_min, g_max]` siemens, read
    /// voltage `v_read` volts, and read pulse `t_read` seconds.
    ///
    /// # Errors
    ///
    /// Returns [`TechError::InvalidParameter`] unless
    /// `0 < g_min < g_max`, `v_read > 0`, and `t_read > 0`.
    pub fn new(g_min: f64, g_max: f64, v_read: f64, t_read: f64) -> Result<Self, TechError> {
        if !(g_min.is_finite() && g_min > 0.0 && g_max.is_finite() && g_max > g_min) {
            return Err(TechError::InvalidParameter {
                name: "g_min/g_max",
                reason: "must satisfy 0 < g_min < g_max",
            });
        }
        if !(v_read.is_finite() && v_read > 0.0) {
            return Err(TechError::InvalidParameter {
                name: "v_read",
                reason: "must be positive and finite",
            });
        }
        if !(t_read.is_finite() && t_read > 0.0) {
            return Err(TechError::InvalidParameter {
                name: "t_read",
                reason: "must be positive and finite",
            });
        }
        Ok(ReramCell {
            g_min,
            g_max,
            v_read,
            t_read,
        })
    }

    /// Minimum programmable conductance, siemens.
    pub fn g_min(&self) -> f64 {
        self.g_min
    }

    /// Maximum programmable conductance, siemens.
    pub fn g_max(&self) -> f64 {
        self.g_max
    }

    /// Nominal read voltage, volts.
    pub fn v_read(&self) -> f64 {
        self.v_read
    }

    /// Read pulse duration, seconds.
    pub fn t_read(&self) -> f64 {
        self.t_read
    }

    /// Conductance representing `level` out of `levels` equally spaced
    /// states (`level = 0` → `g_min`, `level = levels-1` → `g_max`).
    ///
    /// # Panics
    ///
    /// Panics if `levels < 2` or `level >= levels`.
    pub fn conductance_for_level(&self, level: u32, levels: u32) -> f64 {
        assert!(levels >= 2, "need at least two conductance levels");
        assert!(level < levels, "level out of range");
        let frac = level as f64 / (levels - 1) as f64;
        self.g_min + frac * (self.g_max - self.g_min)
    }

    /// Read energy for one cell at conductance `g` and applied voltage `v`:
    /// `E = G · V² · t_read` (paper Algorithm 1).
    pub fn read_energy(&self, g: f64, v: f64) -> f64 {
        g * v * v * self.t_read
    }

    /// Energy to program (SET/RESET) the cell once, in joules.
    ///
    /// Programming uses a stronger, longer pulse than reading; the constant
    /// reflects typical 100 µA-class, ~50 ns programming.
    pub fn program_energy(&self) -> f64 {
        // ~1 V, ~100 uA, ~50 ns.
        1.0 * 100e-6 * 50e-9
    }
}

/// A 1T1C DRAM cell.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DramCell {
    storage_capacitance: f64,
}

impl DramCell {
    /// Typical storage capacitance, farads.
    pub const DEFAULT_CAP: f64 = 25e-15;

    /// Creates a cell with the default 25 fF storage capacitor.
    pub fn new() -> Self {
        DramCell {
            storage_capacitance: Self::DEFAULT_CAP,
        }
    }

    /// Energy to charge/discharge the cell once at supply `vdd`, joules.
    pub fn access_energy(&self, vdd: f64) -> f64 {
        self.storage_capacitance * vdd * vdd
    }
}

impl Default for DramCell {
    fn default() -> Self {
        Self::new()
    }
}

/// A linear capacitor, the building block of charge-domain CiM
/// (Macro D's C-2C ladder) and capacitive SAR data converters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Capacitor {
    capacitance: f64,
}

impl Capacitor {
    /// Creates a capacitor of `capacitance` farads.
    ///
    /// # Errors
    ///
    /// Returns [`TechError::InvalidParameter`] for non-positive values.
    pub fn new(capacitance: f64) -> Result<Self, TechError> {
        if !(capacitance.is_finite() && capacitance > 0.0) {
            return Err(TechError::InvalidParameter {
                name: "capacitance",
                reason: "must be positive and finite",
            });
        }
        Ok(Capacitor { capacitance })
    }

    /// Capacitance in farads.
    pub fn capacitance(&self) -> f64 {
        self.capacitance
    }

    /// Energy drawn from the supply to swing the capacitor by `dv` volts:
    /// `E = C · ΔV²` (charging through a switch dissipates `C·ΔV²` total).
    pub fn switching_energy(&self, dv: f64) -> f64 {
        self.capacitance * dv * dv
    }

    /// Energy stored at voltage `v`: `½ · C · V²`.
    pub fn stored_energy(&self, v: f64) -> f64 {
        0.5 * self.capacitance * v * v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sram_scales_with_node() {
        let big = SramBitcell::new(TechNode::N65);
        let small = SramBitcell::new(TechNode::N7);
        assert!(small.area() < big.area());
        assert!(small.read_energy(0.7) < big.read_energy(1.1));
    }

    #[test]
    fn sram_write_costs_more_than_read() {
        let cell = SramBitcell::new(TechNode::N22);
        assert!(cell.write_energy(0.8) > cell.read_energy(0.8));
    }

    #[test]
    fn sram_geometry_validation() {
        assert!(SramBitcell::with_geometry(TechNode::N22, 0.0, 1e-15).is_err());
        assert!(SramBitcell::with_geometry(TechNode::N22, 150.0, -1.0).is_err());
        assert!(SramBitcell::with_geometry(TechNode::N22, 150.0, 1e-15).is_ok());
    }

    #[test]
    fn reram_energy_follows_gv2t() {
        let cell = ReramCell::new(1e-6, 100e-6, 0.3, 10e-9).unwrap();
        let e = cell.read_energy(50e-6, 0.2);
        assert!((e - 50e-6 * 0.04 * 10e-9).abs() < 1e-24);
        // Quadratic in voltage.
        assert!((cell.read_energy(50e-6, 0.4) / e - 4.0).abs() < 1e-9);
    }

    #[test]
    fn reram_conductance_levels_interpolate() {
        let cell = ReramCell::new(1e-6, 101e-6, 0.3, 10e-9).unwrap();
        assert!((cell.conductance_for_level(0, 5) - 1e-6).abs() < 1e-12);
        assert!((cell.conductance_for_level(4, 5) - 101e-6).abs() < 1e-12);
        assert!((cell.conductance_for_level(2, 5) - 51e-6).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "level out of range")]
    fn reram_level_bounds_checked() {
        let cell = ReramCell::new(1e-6, 100e-6, 0.3, 10e-9).unwrap();
        cell.conductance_for_level(5, 5);
    }

    #[test]
    fn reram_validation() {
        assert!(ReramCell::new(0.0, 100e-6, 0.3, 10e-9).is_err());
        assert!(ReramCell::new(2e-6, 1e-6, 0.3, 10e-9).is_err());
        assert!(ReramCell::new(1e-6, 100e-6, 0.0, 10e-9).is_err());
        assert!(ReramCell::new(1e-6, 100e-6, 0.3, 0.0).is_err());
    }

    #[test]
    fn dram_access_energy_positive() {
        let cell = DramCell::default();
        assert!(cell.access_energy(1.1) > 0.0);
    }

    #[test]
    fn capacitor_energies() {
        let cap = Capacitor::new(1e-15).unwrap();
        assert!((cap.switching_energy(1.0) - 1e-15).abs() < 1e-27);
        assert!((cap.stored_energy(1.0) - 0.5e-15).abs() < 1e-27);
        assert!(Capacitor::new(0.0).is_err());
    }
}
