//! Technology substrate: process nodes, scaling equations, supply-voltage
//! behaviour, and device-level models.
//!
//! The CiMLoop paper projects macros across technology nodes (e.g., Fig 16
//! scales Macros A/B/D to 7 nm) and validates energy/throughput across
//! supply-voltage sweeps (Fig 7). The original tool uses published scaling
//! equations (Stillmaker & Baas, *Integration* 2017) and NeuroSim device
//! models; this crate provides analytical equivalents:
//!
//! - [`TechNode`] — named CMOS nodes from 180 nm to 7 nm with nominal
//!   supply voltages.
//! - [`scaling`] — energy/area/delay scaling factors between nodes.
//! - [`VoltageScale`] — alpha-power-law supply-voltage scaling for energy
//!   (∝ V²) and delay (∝ V/(V−V_t)^α).
//! - [`device`] — SRAM bitcell, ReRAM conductance cell, DRAM cell, and
//!   capacitor models used by the circuit plug-ins.
//!
//! All quantities are SI: joules, seconds, meters², volts, siemens, farads.
//!
//! # Example
//!
//! ```
//! use cimloop_tech::{scaling, TechNode};
//!
//! // Energy per op shrinks moving from 65 nm to 7 nm.
//! let k = scaling::energy_scale(TechNode::N65, TechNode::N7);
//! assert!(k < 1.0);
//! ```

#![forbid(unsafe_code)]
#![warn(clippy::dbg_macro)]
#![warn(clippy::print_stderr)]
#![warn(missing_docs)]

pub mod device;
mod error;
mod node;
pub mod scaling;
mod voltage;

pub use error::TechError;
pub use node::TechNode;
pub use voltage::VoltageScale;

/// 1 femto (10⁻¹⁵), handy for femtojoules and femtofarads.
pub const FEMTO: f64 = 1e-15;
/// 1 pico (10⁻¹²), handy for picojoules and picoseconds.
pub const PICO: f64 = 1e-12;
/// 1 nano (10⁻⁹).
pub const NANO: f64 = 1e-9;
/// 1 micro (10⁻⁶).
pub const MICRO: f64 = 1e-6;
/// 1 milli (10⁻³).
pub const MILLI: f64 = 1e-3;
/// 1 giga (10⁹).
pub const GIGA: f64 = 1e9;
/// 1 tera (10¹²).
pub const TERA: f64 = 1e12;
