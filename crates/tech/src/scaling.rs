//! Inter-node scaling factors in the style of Stillmaker & Baas
//! (*Scaling equations for the accurate prediction of CMOS device
//! performance from 180 nm to 7 nm*, Integration 2017), which the original
//! CiMLoop uses to project macros across nodes (paper Fig 16).
//!
//! Dynamic energy per operation scales with switched capacitance (∝ feature
//! size) times V_dd²; area scales with feature size squared (with a mild
//! slowdown below 22 nm where design rules stop shrinking as fast); delay
//! scales roughly linearly with feature size.

use crate::TechNode;

/// Relative dynamic energy per operation at `node`, normalized to 45 nm.
///
/// `E ∝ C · V²` with `C ∝ feature size`.
pub fn energy_factor(node: TechNode) -> f64 {
    let ref_node = TechNode::N45;
    (node.nm() / ref_node.nm()) * (node.nominal_vdd() / ref_node.nominal_vdd()).powi(2)
}

/// Relative area at `node`, normalized to 45 nm.
///
/// Ideal shrink is quadratic in feature size; below 22 nm the effective
/// shrink saturates (fin pitch, contacted poly pitch), which we model with a
/// 0.8 exponent discount on the sub-22 nm portion.
pub fn area_factor(node: TechNode) -> f64 {
    let ref_nm = TechNode::N45.nm();
    let nm = node.nm();
    if nm >= 22.0 {
        (nm / ref_nm).powi(2)
    } else {
        // Full quadratic shrink down to 22 nm, discounted shrink below it.
        let to_22 = (22.0 / ref_nm).powi(2);
        to_22 * (nm / 22.0).powf(1.6)
    }
}

/// Relative gate delay at `node`, normalized to 45 nm.
pub fn delay_factor(node: TechNode) -> f64 {
    node.nm() / TechNode::N45.nm()
}

/// Multiplier converting a dynamic energy at node `from` into node `to`.
pub fn energy_scale(from: TechNode, to: TechNode) -> f64 {
    energy_factor(to) / energy_factor(from)
}

/// Multiplier converting an area at node `from` into node `to`.
pub fn area_scale(from: TechNode, to: TechNode) -> f64 {
    area_factor(to) / area_factor(from)
}

/// Multiplier converting a delay at node `from` into node `to`.
pub fn delay_scale(from: TechNode, to: TechNode) -> f64 {
    delay_factor(to) / delay_factor(from)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_scaling_is_one() {
        for node in TechNode::ALL {
            assert!((energy_scale(node, node) - 1.0).abs() < 1e-12);
            assert!((area_scale(node, node) - 1.0).abs() < 1e-12);
            assert!((delay_scale(node, node) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn shrinking_reduces_energy_area_delay() {
        for pair in TechNode::ALL.windows(2) {
            assert!(energy_scale(pair[0], pair[1]) < 1.0, "{:?}", pair);
            assert!(area_scale(pair[0], pair[1]) < 1.0, "{:?}", pair);
            assert!(delay_scale(pair[0], pair[1]) <= 1.0, "{:?}", pair);
        }
    }

    #[test]
    fn scaling_composes() {
        let direct = energy_scale(TechNode::N180, TechNode::N7);
        let via_45 =
            energy_scale(TechNode::N180, TechNode::N45) * energy_scale(TechNode::N45, TechNode::N7);
        assert!((direct - via_45).abs() < 1e-12);
    }

    #[test]
    fn full_range_energy_reduction_is_large() {
        // 180 nm -> 7 nm should cut dynamic energy by well over an order of
        // magnitude (capacitance and V^2 both shrink).
        let k = energy_scale(TechNode::N180, TechNode::N7);
        assert!(k < 0.05, "k = {k}");
    }

    #[test]
    fn sub_22nm_area_shrink_is_discounted() {
        // The 22 -> 7 nm area shrink should be less than the ideal quadratic.
        let actual = area_scale(TechNode::N22, TechNode::N7);
        let ideal = (7.0f64 / 22.0).powi(2);
        assert!(actual > ideal);
        assert!(actual < 1.0);
    }
}
