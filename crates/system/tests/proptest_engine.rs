//! Property tests for the amortized network-evaluation engine: caching and
//! parallel fan-out must be *exactly* invisible — bit-for-bit identical
//! reports to the sequential, uncached evaluator — across random layer
//! sequences with repeated value signatures.

use std::sync::OnceLock;

use cimloop_core::{EnergyTableCache, Evaluator, Representation};
use cimloop_macros::base_macro;
use cimloop_system::NetworkEngine;
use cimloop_workload::{Layer, LayerKind, Shape, ValueProfile, Workload};
use proptest::prelude::*;

fn evaluator() -> &'static (Evaluator, Representation) {
    static EVAL: OnceLock<(Evaluator, Representation)> = OnceLock::new();
    EVAL.get_or_init(|| {
        let m = base_macro().uncalibrated();
        let rep = m.representation();
        (m.raw_evaluator().expect("base macro evaluates"), rep)
    })
}

/// A small palette of layer archetypes. Sequences drawn from it repeat
/// value signatures (the cache's bread and butter) while varying shapes
/// (which the signature must ignore).
fn palette_layer(archetype: u8, shape_seed: u8, index: usize) -> Layer {
    let k = 16 + 16 * (shape_seed as u64 % 4);
    let c = 24 + 8 * (shape_seed as u64 / 4);
    let name = format!("l{index}");
    match archetype % 4 {
        0 => Layer::new(name, LayerKind::Linear, Shape::linear(2, k, c).unwrap()),
        1 => {
            Layer::new(name, LayerKind::Linear, Shape::linear(2, k, c).unwrap()).with_input_bits(4)
        }
        2 => Layer::new(
            name,
            LayerKind::Conv,
            Shape::conv(k, 8, 6, 6, 3, 3).unwrap(),
        )
        .with_input_profile(ValueProfile::UniformUnsigned),
        _ => Layer::new(name, LayerKind::Linear, Shape::linear(4, k, c).unwrap())
            .with_weight_profile(ValueProfile::GaussianWeights { sigma: 0.3 }),
    }
}

fn arb_workload() -> impl Strategy<Value = Workload> {
    prop::collection::vec((0u8..4, 0u8..8), 2..7).prop_map(|specs| {
        let layers = specs
            .into_iter()
            .enumerate()
            .map(|(i, (archetype, shape_seed))| palette_layer(archetype, shape_seed, i))
            .collect();
        Workload::new("random-net", layers).expect("non-empty")
    })
}

proptest! {
    // Every case evaluates a network three ways; keep the count modest.
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn cached_evaluation_is_bit_identical(net in arb_workload()) {
        let (evaluator, rep) = evaluator();
        let cache = EnergyTableCache::new();
        let uncached = evaluator.evaluate(&net, rep).expect("uncached");
        let cached = evaluator.evaluate_cached(&net, rep, &cache).expect("cached");
        prop_assert_eq!(&uncached, &cached);
        // Repeats in the sequence must actually share tables.
        prop_assert!(cache.len() <= 4, "more tables than archetypes: {}", cache.len());
        prop_assert_eq!(
            cache.hits() + cache.misses(),
            net.layers().len() as u64
        );
    }

    #[test]
    fn parallel_network_is_bit_identical(net in arb_workload()) {
        let (evaluator, rep) = evaluator();
        let sequential = evaluator.evaluate(&net, rep).expect("sequential");
        let engine = NetworkEngine::new(evaluator).with_threads(4);
        let parallel = engine.evaluate_network(&net, rep).expect("parallel");
        prop_assert_eq!(&sequential, &parallel);
        // A second sweep through the warmed engine is also identical.
        let again = engine.evaluate_network(&net, rep).expect("warm");
        prop_assert_eq!(&sequential, &again);
    }
}
