//! Full-system CiM modeling: DRAM backing storage plus a chip with a
//! global buffer, a router/NoC, and CiM macros (paper §V-B4, Fig 15).
//!
//! Whole-system context is what makes macro-level decisions meaningful
//! (paper Fig 2a: the lowest-energy *macro* is not the macro that yields
//! the lowest-energy *system*). [`CimSystem`] nests any
//! [`cimloop_macros::ArrayMacro`] under a configurable memory hierarchy and
//! evaluates the three storage scenarios of Fig 15 via
//! [`StorageScenario`].
//!
//! For whole-network sweeps, [`NetworkEngine`] amortizes the
//! data-value-dependent energy tables across layers with equal value
//! signatures and fans layer evaluation out over a scoped thread pool,
//! producing bit-identical reports to the sequential path.
//!
//! # Example
//!
//! ```
//! use cimloop_macros::macro_d;
//! use cimloop_system::{CimSystem, StorageScenario};
//! use cimloop_workload::models;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let system = CimSystem::new(macro_d())
//!     .with_scenario(StorageScenario::WeightStationary);
//! let evaluator = system.evaluator()?;
//! let net = models::resnet18();
//! let report = evaluator.evaluate_layer(&net.layers()[5], &system.representation())?;
//! assert!(report.energy_of("dram") > 0.0); // inputs/outputs move off-chip
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(clippy::dbg_macro)]
#![warn(clippy::print_stderr)]
#![warn(missing_docs)]

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

use cimloop_core::{
    CoreError, EnergyTableCache, Evaluator, LayerReport, Representation, RunReport,
};
use cimloop_macros::ArrayMacro;
use cimloop_spec::{Component, Hierarchy, Reuse, Tensor};
use cimloop_workload::Workload;

/// Where tensors live between uses (the three scenarios of paper Fig 15).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StorageScenario {
    /// Inputs, outputs, *and* weights are stored off-chip and fetched from
    /// DRAM for each layer.
    AllTensorsFromDram,
    /// Weights are pre-loaded into the CiM arrays (stationary); inputs and
    /// outputs move to/from DRAM once per layer.
    #[default]
    WeightStationary,
    /// Weights stationary and inputs/outputs kept on-chip in the global
    /// buffer between layers (layer-fusion style; no DRAM traffic).
    IoOnChip,
}

impl StorageScenario {
    /// All scenarios, paper order.
    pub const ALL: [StorageScenario; 3] = [
        StorageScenario::AllTensorsFromDram,
        StorageScenario::WeightStationary,
        StorageScenario::IoOnChip,
    ];

    /// Display name matching the paper's Fig 15 labels.
    pub fn name(self) -> &'static str {
        match self {
            StorageScenario::AllTensorsFromDram => "All Tensors fetched from DRAM",
            StorageScenario::WeightStationary => "Weight-Stationary, Inputs/Outputs in DRAM",
            StorageScenario::IoOnChip => "Weight-Stationary, Inputs/Outputs On-Chip",
        }
    }
}

impl std::fmt::Display for StorageScenario {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A full CiM system: DRAM → global buffer → router → macro.
///
/// The global buffer is sized to hold any tested layer's tensors (as in the
/// paper), so inputs/outputs/weights transfer to/from DRAM at most once per
/// layer.
#[derive(Debug, Clone)]
pub struct CimSystem {
    cim_macro: ArrayMacro,
    scenario: StorageScenario,
    glb_entries: u64,
    dram_width: u32,
    router_width: u32,
}

impl CimSystem {
    /// Wraps `cim_macro` in the default system (weight-stationary, 16 MiB
    /// global buffer, 64-bit DRAM channel and NoC).
    pub fn new(cim_macro: ArrayMacro) -> Self {
        CimSystem {
            cim_macro,
            scenario: StorageScenario::default(),
            glb_entries: 2 * 1024 * 1024, // × 64-bit words = 16 MiB
            dram_width: 64,
            router_width: 64,
        }
    }

    /// Sets the storage scenario.
    pub fn with_scenario(mut self, scenario: StorageScenario) -> Self {
        self.scenario = scenario;
        self
    }

    /// Sets the global-buffer capacity in 64-bit words.
    pub fn with_glb_entries(mut self, entries: u64) -> Self {
        self.glb_entries = entries.max(1);
        self
    }

    /// The wrapped macro.
    pub fn cim_macro(&self) -> &ArrayMacro {
        &self.cim_macro
    }

    /// The configured scenario.
    pub fn scenario(&self) -> StorageScenario {
        self.scenario
    }

    /// The macro's data representation (shared by the system).
    pub fn representation(&self) -> Representation {
        self.cim_macro.representation()
    }

    /// Builds the full-system hierarchy: memory hierarchy nodes nested
    /// around the macro's own hierarchy.
    ///
    /// # Errors
    ///
    /// Propagates macro and spec errors.
    pub fn hierarchy(&self) -> Result<Hierarchy, CoreError> {
        let node_nm = self.cim_macro.node_nm();
        let mut outer = Hierarchy::builder();

        // DRAM: present unless I/O stays on-chip; stores weights only in
        // the all-from-DRAM scenario (stationary weights are pre-loaded and
        // not billed, per the paper).
        match self.scenario {
            StorageScenario::AllTensorsFromDram => {
                outer = outer.component(
                    Component::new("dram")
                        .with_class("dram")
                        .with_attr("width", self.dram_width as i64)
                        .with_reuse(Tensor::Inputs, Reuse::Temporal)
                        .with_reuse(Tensor::Outputs, Reuse::Temporal)
                        .with_reuse(Tensor::Weights, Reuse::Temporal),
                );
            }
            StorageScenario::WeightStationary => {
                outer = outer.component(
                    Component::new("dram")
                        .with_class("dram")
                        .with_attr("width", self.dram_width as i64)
                        .with_reuse(Tensor::Inputs, Reuse::Temporal)
                        .with_reuse(Tensor::Outputs, Reuse::Temporal),
                );
            }
            StorageScenario::IoOnChip => {}
        }

        // Global buffer: roots I/O on-chip; weights stream through only in
        // the all-from-DRAM scenario.
        let mut glb = Component::new("global_buffer")
            .with_class("sram_buffer")
            .with_attr("entries", self.glb_entries as i64)
            .with_attr("width", 64i64)
            .with_attr("technology", node_nm)
            .with_reuse(Tensor::Inputs, Reuse::Temporal)
            .with_reuse(Tensor::Outputs, Reuse::Temporal);
        if self.scenario == StorageScenario::AllTensorsFromDram {
            glb = glb.with_reuse(Tensor::Weights, Reuse::Coalesce);
        }
        outer = outer.component(glb);

        // The on-chip network between the global buffer and the macro.
        let mut router = Component::new("router")
            .with_class("router")
            .with_attr("width", self.router_width as i64)
            .with_attr("technology", node_nm)
            .with_reuse(Tensor::Inputs, Reuse::NoCoalesce)
            .with_reuse(Tensor::Outputs, Reuse::NoCoalesce);
        if self.scenario == StorageScenario::AllTensorsFromDram {
            router = router.with_reuse(Tensor::Weights, Reuse::NoCoalesce);
        }
        outer = outer.component(router);

        let outer = outer.build()?;
        Ok(outer.nest(&self.cim_macro.hierarchy()?)?)
    }

    /// Builds a calibrated evaluator for the full system.
    ///
    /// # Errors
    ///
    /// Propagates hierarchy and calibration errors.
    pub fn evaluator(&self) -> Result<Evaluator, CoreError> {
        // Calibrate the macro in isolation, then nest the scaled macro.
        let calibrated = match self.cim_macro.calibration() {
            Some(anchor) => {
                let (e, l) = cimloop_macros::calibrate::calibrate(&self.cim_macro, anchor)?;
                self.cim_macro.clone().uncalibrated().with_scales(e, l)
            }
            None => self.cim_macro.clone(),
        };
        let system = CimSystem {
            cim_macro: calibrated,
            ..self.clone()
        };
        Evaluator::new(system.hierarchy()?)
    }

    /// Groups a layer report into the paper's Fig 15 categories:
    /// `(macro + on-chip movement, global buffer, off-chip DRAM)`, joules.
    pub fn fig15_breakdown(report: &LayerReport) -> (f64, f64, f64) {
        let dram = report.energy_of("dram");
        let glb = report.energy_of("global_buffer");
        let on_chip = report.energy_total() - dram - glb;
        (on_chip, glb, dram)
    }
}

/// The amortized network-evaluation engine (paper Table II at network
/// scale): evaluates whole workloads by sharing [`ActionEnergyTable`]s
/// across layers with equal value signatures and fanning layers out over a
/// scoped thread pool.
///
/// Results are **bit-identical** to the sequential, uncached
/// [`Evaluator::evaluate`] path: the energy-table computation is
/// deterministic (so a shared table equals a recomputed one), each layer is
/// evaluated by exactly the same code, and per-layer
/// [`cimloop_core::ComponentReport`]s are merged back in workload order
/// regardless of thread scheduling.
///
/// [`ActionEnergyTable`]: cimloop_core::ActionEnergyTable
///
/// # Example
///
/// ```
/// use cimloop_macros::base_macro;
/// use cimloop_system::NetworkEngine;
/// use cimloop_workload::models;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let m = base_macro();
/// let evaluator = m.evaluator()?;
/// let engine = NetworkEngine::new(&evaluator);
/// let report = engine.evaluate_network(&models::mvm(64, 64), &m.representation())?;
/// assert!(report.energy_total() > 0.0);
/// # Ok(())
/// # }
/// ```
pub struct NetworkEngine<'a> {
    evaluator: &'a Evaluator,
    cache: std::sync::Arc<EnergyTableCache>,
    threads: usize,
}

impl<'a> NetworkEngine<'a> {
    /// Creates an engine over `evaluator` with an empty cache, using every
    /// available core.
    pub fn new(evaluator: &'a Evaluator) -> Self {
        NetworkEngine {
            evaluator,
            cache: std::sync::Arc::new(EnergyTableCache::new()),
            threads: 0,
        }
    }

    /// Sets the worker-thread count. `0` (the default) resolves to
    /// [`std::thread::available_parallelism`]; `1` evaluates layers
    /// sequentially on the calling thread (still cached).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Shares an existing (possibly bounded) cache instead of the engine's
    /// own — the resident-service configuration, where every request's
    /// engine amortizes against one process-wide cache. Results are
    /// bit-identical either way; only timing changes.
    pub fn with_cache(mut self, cache: std::sync::Arc<EnergyTableCache>) -> Self {
        self.cache = cache;
        self
    }

    /// The underlying evaluator.
    pub fn evaluator(&self) -> &Evaluator {
        self.evaluator
    }

    /// The engine's energy-table cache (for hit/miss introspection).
    pub fn cache(&self) -> &EnergyTableCache {
        &self.cache
    }

    /// The resolved worker count for a workload of `layers` layers.
    fn resolved_threads(&self, layers: usize) -> usize {
        let configured = if self.threads == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            self.threads
        };
        configured.clamp(1, layers.max(1))
    }

    /// Evaluates one layer through the shared energy-table cache.
    ///
    /// # Errors
    ///
    /// Propagates pipeline, mapper, and dataflow errors.
    pub fn evaluate_layer(
        &self,
        layer: &cimloop_workload::Layer,
        rep: &Representation,
    ) -> Result<LayerReport, CoreError> {
        self.evaluator
            .evaluate_layer_cached(layer, rep, &self.cache)
    }

    /// Evaluates a whole workload, amortizing energy tables across layers
    /// and parallelizing layer evaluation over the thread pool. The merged
    /// report is deterministic: layers appear in workload order with
    /// bit-identical numbers to the sequential path.
    ///
    /// # Errors
    ///
    /// Propagates per-layer errors. On the first failure the sweep aborts:
    /// workers stop pulling layers, so unclaimed layers are never
    /// evaluated, and the error of the earliest *claimed* failing layer is
    /// returned.
    pub fn evaluate_network(
        &self,
        workload: &Workload,
        rep: &Representation,
    ) -> Result<RunReport, CoreError> {
        let layers = workload.layers();
        let threads = self.resolved_threads(layers.len());
        if threads == 1 {
            return self.evaluator.evaluate_cached(workload, rep, &self.cache);
        }

        // Work-stealing over layer indices: workers pull the next index
        // from a shared counter and tag results with it, so the merge
        // below is independent of scheduling. A failure aborts the sweep
        // promptly instead of paying for the remaining layers.
        let next = AtomicUsize::new(0);
        let failed = AtomicBool::new(false);
        let mut tagged: Vec<(usize, Result<LayerReport, CoreError>)> =
            std::thread::scope(|scope| {
                let mut handles = Vec::with_capacity(threads);
                for _ in 0..threads {
                    let next = &next;
                    let failed = &failed;
                    let cache = &self.cache;
                    let evaluator = self.evaluator;
                    handles.push(scope.spawn(move || {
                        let mut out = Vec::new();
                        while !failed.load(Ordering::Relaxed) {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            let Some(layer) = layers.get(i) else { break };
                            let result = evaluator.evaluate_layer_cached(layer, rep, cache);
                            if result.is_err() {
                                failed.store(true, Ordering::Relaxed);
                            }
                            out.push((i, result));
                        }
                        out
                    }));
                }
                handles
                    .into_iter()
                    .flat_map(|h| h.join().expect("engine worker panicked"))
                    .collect()
            });

        tagged.sort_by_key(|&(i, _)| i);
        let mut merged = Vec::with_capacity(layers.len());
        for (i, result) in tagged {
            merged.push((layers[i].count(), result?));
        }
        Ok(RunReport::from_layer_reports(workload.name(), merged))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cimloop_macros::{base_macro, macro_d};
    use cimloop_workload::{models, Layer, LayerKind, Shape};

    fn small_layer() -> Layer {
        Layer::new("l", LayerKind::Linear, Shape::linear(32, 128, 128).unwrap())
    }

    #[test]
    fn scenarios_build_distinct_hierarchies() {
        let m = base_macro().uncalibrated();
        let all = CimSystem::new(m.clone())
            .with_scenario(StorageScenario::AllTensorsFromDram)
            .hierarchy()
            .unwrap();
        let ws = CimSystem::new(m.clone())
            .with_scenario(StorageScenario::WeightStationary)
            .hierarchy()
            .unwrap();
        let on_chip = CimSystem::new(m)
            .with_scenario(StorageScenario::IoOnChip)
            .hierarchy()
            .unwrap();
        assert!(all.component("dram").is_some());
        assert!(ws.component("dram").is_some());
        assert!(on_chip.component("dram").is_none());
        // Weights only route through DRAM in the all-from-DRAM scenario.
        assert!(all
            .component("dram")
            .unwrap()
            .reuse(Tensor::Weights)
            .is_active());
        assert!(!ws
            .component("dram")
            .unwrap()
            .reuse(Tensor::Weights)
            .is_active());
    }

    #[test]
    fn weight_stationary_cuts_dram_energy() {
        let layer = small_layer();
        let mut energies = Vec::new();
        for scenario in StorageScenario::ALL {
            let system = CimSystem::new(base_macro().uncalibrated()).with_scenario(scenario);
            let e = system.evaluator().unwrap();
            let report = e.evaluate_layer(&layer, &system.representation()).unwrap();
            energies.push(report.energy_total());
        }
        // Paper Fig 15: each scenario strictly improves on the previous.
        assert!(energies[0] > energies[1], "{energies:?}");
        assert!(energies[1] > energies[2], "{energies:?}");
    }

    #[test]
    fn fig15_breakdown_partitions_total() {
        let system = CimSystem::new(macro_d()).with_scenario(StorageScenario::WeightStationary);
        let e = system.evaluator().unwrap();
        let report = e
            .evaluate_layer(&small_layer(), &system.representation())
            .unwrap();
        let (on_chip, glb, dram) = CimSystem::fig15_breakdown(&report);
        assert!(on_chip > 0.0 && glb > 0.0 && dram > 0.0);
        assert!(((on_chip + glb + dram) - report.energy_total()).abs() < 1e-15);
    }

    #[test]
    fn system_energy_exceeds_macro_energy() {
        let m = base_macro().uncalibrated();
        let layer = small_layer();
        let macro_report = m
            .raw_evaluator()
            .unwrap()
            .evaluate_layer(&layer, &m.representation())
            .unwrap();
        let system = CimSystem::new(m.clone()).with_scenario(StorageScenario::AllTensorsFromDram);
        let system_report = system
            .evaluator()
            .unwrap()
            .evaluate_layer(&layer, &system.representation())
            .unwrap();
        assert!(system_report.energy_total() > macro_report.energy_total());
    }

    #[test]
    fn parallel_network_is_bit_identical_to_sequential() {
        let m = base_macro().uncalibrated();
        let evaluator = m.raw_evaluator().unwrap();
        let rep = m.representation();
        // An unrolled transformer-style stack: 6 layers, distinct shapes,
        // but only two distinct value signatures (shape is not part of the
        // signature; precision is).
        let layers: Vec<Layer> = (0..6)
            .map(|i| {
                let l = Layer::new(
                    format!("block{i}"),
                    LayerKind::Linear,
                    Shape::linear(4, 32 + 16 * i, 64).unwrap(),
                );
                if i % 3 == 0 {
                    l.with_input_bits(4)
                } else {
                    l
                }
            })
            .collect();
        let net = cimloop_workload::Workload::new("stack", layers).unwrap();

        let sequential = evaluator.evaluate(&net, &rep).unwrap();
        let engine = NetworkEngine::new(&evaluator).with_threads(4);
        let parallel = engine.evaluate_network(&net, &rep).unwrap();
        assert_eq!(sequential, parallel);
        // Repeated signatures dedupe to two cached tables. (The hit/miss
        // split is timing-dependent under concurrency — racing misses on
        // one signature may each compute a bit-identical table — so only
        // the lookup total and the deduped count are asserted.)
        let stats = (engine.cache().hits(), engine.cache().misses());
        assert_eq!(stats.0 + stats.1, 6);
        assert_eq!(engine.cache().len(), 2);
        // A second, warm sweep is all hits and still bit-identical.
        let warm = engine.evaluate_network(&net, &rep).unwrap();
        assert_eq!(sequential, warm);
        assert_eq!(engine.cache().hits(), stats.0 + 6);
    }

    #[test]
    fn unrolled_zoo_network_amortizes_tables() {
        let m = base_macro().uncalibrated();
        let evaluator = m.raw_evaluator().unwrap();
        let rep = m.representation();
        // The execution-order view of ViT's encoder: every repeat of a
        // block shares its table with the other repeats.
        let net = models::vit_base();
        let unrolled = net.unrolled();
        let subset =
            cimloop_workload::Workload::new("vit-head", unrolled.layers()[..20].to_vec()).unwrap();
        let engine = NetworkEngine::new(&evaluator);
        let report = engine.evaluate_network(&subset, &rep).unwrap();
        assert_eq!(report.layers().len(), 20);
        assert!(
            engine.cache().len() <= 4,
            "expected few distinct signatures, got {}",
            engine.cache().len()
        );
        assert_eq!(report, evaluator.evaluate(&subset, &rep).unwrap());
    }

    #[test]
    fn single_thread_engine_matches_too() {
        let m = base_macro().uncalibrated();
        let evaluator = m.raw_evaluator().unwrap();
        let rep = m.representation();
        let net = models::mvm_batch(64, 64, 4);
        let engine = NetworkEngine::new(&evaluator).with_threads(1);
        let report = engine.evaluate_network(&net, &rep).unwrap();
        assert_eq!(report, evaluator.evaluate(&net, &rep).unwrap());
    }

    #[test]
    fn engine_layer_evaluation_uses_the_cache() {
        let m = base_macro().uncalibrated();
        let evaluator = m.raw_evaluator().unwrap();
        let rep = m.representation();
        let layer = small_layer();
        let engine = NetworkEngine::new(&evaluator);
        let a = engine.evaluate_layer(&layer, &rep).unwrap();
        let b = engine.evaluate_layer(&layer, &rep).unwrap();
        assert_eq!(a, b);
        assert_eq!(engine.cache().misses(), 1);
        assert_eq!(engine.cache().hits(), 1);
        assert_eq!(a, evaluator.evaluate_layer(&layer, &rep).unwrap());
    }

    #[test]
    fn larger_arrays_cut_dram_weight_traffic() {
        // Fig 2a's mechanism: a bigger array holds more weights, so fewer
        // DRAM weight fetches for the same workload.
        let net = models::resnet18();
        let layer = &net.layers()[6];
        let mut dram_energy = Vec::new();
        for size in [64u64, 256] {
            let m = base_macro().uncalibrated().with_array(size, size);
            let system = CimSystem::new(m).with_scenario(StorageScenario::AllTensorsFromDram);
            let e = system.evaluator().unwrap();
            let report = e.evaluate_layer(layer, &system.representation()).unwrap();
            dram_energy.push(report.energy_of("dram"));
        }
        assert!(
            dram_energy[0] > dram_energy[1],
            "small-array DRAM {} vs large-array {}",
            dram_energy[0],
            dram_energy[1]
        );
    }
}
