//! Full-system CiM modeling: DRAM backing storage plus a chip with a
//! global buffer, a router/NoC, and CiM macros (paper §V-B4, Fig 15).
//!
//! Whole-system context is what makes macro-level decisions meaningful
//! (paper Fig 2a: the lowest-energy *macro* is not the macro that yields
//! the lowest-energy *system*). [`CimSystem`] nests any
//! [`cimloop_macros::ArrayMacro`] under a configurable memory hierarchy and
//! evaluates the three storage scenarios of Fig 15 via
//! [`StorageScenario`].
//!
//! # Example
//!
//! ```
//! use cimloop_macros::macro_d;
//! use cimloop_system::{CimSystem, StorageScenario};
//! use cimloop_workload::models;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let system = CimSystem::new(macro_d())
//!     .with_scenario(StorageScenario::WeightStationary);
//! let evaluator = system.evaluator()?;
//! let net = models::resnet18();
//! let report = evaluator.evaluate_layer(&net.layers()[5], &system.representation())?;
//! assert!(report.energy_of("dram") > 0.0); // inputs/outputs move off-chip
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use cimloop_core::{CoreError, Evaluator, LayerReport, Representation};
use cimloop_macros::ArrayMacro;
use cimloop_spec::{Component, Hierarchy, Reuse, Tensor};

/// Where tensors live between uses (the three scenarios of paper Fig 15).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StorageScenario {
    /// Inputs, outputs, *and* weights are stored off-chip and fetched from
    /// DRAM for each layer.
    AllTensorsFromDram,
    /// Weights are pre-loaded into the CiM arrays (stationary); inputs and
    /// outputs move to/from DRAM once per layer.
    #[default]
    WeightStationary,
    /// Weights stationary and inputs/outputs kept on-chip in the global
    /// buffer between layers (layer-fusion style; no DRAM traffic).
    IoOnChip,
}

impl StorageScenario {
    /// All scenarios, paper order.
    pub const ALL: [StorageScenario; 3] = [
        StorageScenario::AllTensorsFromDram,
        StorageScenario::WeightStationary,
        StorageScenario::IoOnChip,
    ];

    /// Display name matching the paper's Fig 15 labels.
    pub fn name(self) -> &'static str {
        match self {
            StorageScenario::AllTensorsFromDram => "All Tensors fetched from DRAM",
            StorageScenario::WeightStationary => "Weight-Stationary, Inputs/Outputs in DRAM",
            StorageScenario::IoOnChip => "Weight-Stationary, Inputs/Outputs On-Chip",
        }
    }
}

impl std::fmt::Display for StorageScenario {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A full CiM system: DRAM → global buffer → router → macro.
///
/// The global buffer is sized to hold any tested layer's tensors (as in the
/// paper), so inputs/outputs/weights transfer to/from DRAM at most once per
/// layer.
#[derive(Debug, Clone)]
pub struct CimSystem {
    cim_macro: ArrayMacro,
    scenario: StorageScenario,
    glb_entries: u64,
    dram_width: u32,
    router_width: u32,
}

impl CimSystem {
    /// Wraps `cim_macro` in the default system (weight-stationary, 16 MiB
    /// global buffer, 64-bit DRAM channel and NoC).
    pub fn new(cim_macro: ArrayMacro) -> Self {
        CimSystem {
            cim_macro,
            scenario: StorageScenario::default(),
            glb_entries: 2 * 1024 * 1024, // × 64-bit words = 16 MiB
            dram_width: 64,
            router_width: 64,
        }
    }

    /// Sets the storage scenario.
    pub fn with_scenario(mut self, scenario: StorageScenario) -> Self {
        self.scenario = scenario;
        self
    }

    /// Sets the global-buffer capacity in 64-bit words.
    pub fn with_glb_entries(mut self, entries: u64) -> Self {
        self.glb_entries = entries.max(1);
        self
    }

    /// The wrapped macro.
    pub fn cim_macro(&self) -> &ArrayMacro {
        &self.cim_macro
    }

    /// The configured scenario.
    pub fn scenario(&self) -> StorageScenario {
        self.scenario
    }

    /// The macro's data representation (shared by the system).
    pub fn representation(&self) -> Representation {
        self.cim_macro.representation()
    }

    /// Builds the full-system hierarchy: memory hierarchy nodes nested
    /// around the macro's own hierarchy.
    ///
    /// # Errors
    ///
    /// Propagates macro and spec errors.
    pub fn hierarchy(&self) -> Result<Hierarchy, CoreError> {
        let node_nm = self.cim_macro.node_nm();
        let mut outer = Hierarchy::builder();

        // DRAM: present unless I/O stays on-chip; stores weights only in
        // the all-from-DRAM scenario (stationary weights are pre-loaded and
        // not billed, per the paper).
        match self.scenario {
            StorageScenario::AllTensorsFromDram => {
                outer = outer.component(
                    Component::new("dram")
                        .with_class("dram")
                        .with_attr("width", self.dram_width as i64)
                        .with_reuse(Tensor::Inputs, Reuse::Temporal)
                        .with_reuse(Tensor::Outputs, Reuse::Temporal)
                        .with_reuse(Tensor::Weights, Reuse::Temporal),
                );
            }
            StorageScenario::WeightStationary => {
                outer = outer.component(
                    Component::new("dram")
                        .with_class("dram")
                        .with_attr("width", self.dram_width as i64)
                        .with_reuse(Tensor::Inputs, Reuse::Temporal)
                        .with_reuse(Tensor::Outputs, Reuse::Temporal),
                );
            }
            StorageScenario::IoOnChip => {}
        }

        // Global buffer: roots I/O on-chip; weights stream through only in
        // the all-from-DRAM scenario.
        let mut glb = Component::new("global_buffer")
            .with_class("sram_buffer")
            .with_attr("entries", self.glb_entries as i64)
            .with_attr("width", 64i64)
            .with_attr("technology", node_nm)
            .with_reuse(Tensor::Inputs, Reuse::Temporal)
            .with_reuse(Tensor::Outputs, Reuse::Temporal);
        if self.scenario == StorageScenario::AllTensorsFromDram {
            glb = glb.with_reuse(Tensor::Weights, Reuse::Coalesce);
        }
        outer = outer.component(glb);

        // The on-chip network between the global buffer and the macro.
        let mut router = Component::new("router")
            .with_class("router")
            .with_attr("width", self.router_width as i64)
            .with_attr("technology", node_nm)
            .with_reuse(Tensor::Inputs, Reuse::NoCoalesce)
            .with_reuse(Tensor::Outputs, Reuse::NoCoalesce);
        if self.scenario == StorageScenario::AllTensorsFromDram {
            router = router.with_reuse(Tensor::Weights, Reuse::NoCoalesce);
        }
        outer = outer.component(router);

        let outer = outer.build()?;
        Ok(outer.nest(&self.cim_macro.hierarchy()?)?)
    }

    /// Builds a calibrated evaluator for the full system.
    ///
    /// # Errors
    ///
    /// Propagates hierarchy and calibration errors.
    pub fn evaluator(&self) -> Result<Evaluator, CoreError> {
        // Calibrate the macro in isolation, then nest the scaled macro.
        let calibrated = match self.cim_macro.calibration() {
            Some(anchor) => {
                let (e, l) = cimloop_macros::calibrate::calibrate(&self.cim_macro, anchor)?;
                self.cim_macro.clone().uncalibrated().with_scales(e, l)
            }
            None => self.cim_macro.clone(),
        };
        let system = CimSystem {
            cim_macro: calibrated,
            ..self.clone()
        };
        Evaluator::new(system.hierarchy()?)
    }

    /// Groups a layer report into the paper's Fig 15 categories:
    /// `(macro + on-chip movement, global buffer, off-chip DRAM)`, joules.
    pub fn fig15_breakdown(report: &LayerReport) -> (f64, f64, f64) {
        let dram = report.energy_of("dram");
        let glb = report.energy_of("global_buffer");
        let on_chip = report.energy_total() - dram - glb;
        (on_chip, glb, dram)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cimloop_macros::{base_macro, macro_d};
    use cimloop_workload::{models, Layer, LayerKind, Shape};

    fn small_layer() -> Layer {
        Layer::new("l", LayerKind::Linear, Shape::linear(32, 128, 128).unwrap())
    }

    #[test]
    fn scenarios_build_distinct_hierarchies() {
        let m = base_macro().uncalibrated();
        let all = CimSystem::new(m.clone())
            .with_scenario(StorageScenario::AllTensorsFromDram)
            .hierarchy()
            .unwrap();
        let ws = CimSystem::new(m.clone())
            .with_scenario(StorageScenario::WeightStationary)
            .hierarchy()
            .unwrap();
        let on_chip = CimSystem::new(m)
            .with_scenario(StorageScenario::IoOnChip)
            .hierarchy()
            .unwrap();
        assert!(all.component("dram").is_some());
        assert!(ws.component("dram").is_some());
        assert!(on_chip.component("dram").is_none());
        // Weights only route through DRAM in the all-from-DRAM scenario.
        assert!(all
            .component("dram")
            .unwrap()
            .reuse(Tensor::Weights)
            .is_active());
        assert!(!ws
            .component("dram")
            .unwrap()
            .reuse(Tensor::Weights)
            .is_active());
    }

    #[test]
    fn weight_stationary_cuts_dram_energy() {
        let layer = small_layer();
        let mut energies = Vec::new();
        for scenario in StorageScenario::ALL {
            let system = CimSystem::new(base_macro().uncalibrated()).with_scenario(scenario);
            let e = system.evaluator().unwrap();
            let report = e.evaluate_layer(&layer, &system.representation()).unwrap();
            energies.push(report.energy_total());
        }
        // Paper Fig 15: each scenario strictly improves on the previous.
        assert!(energies[0] > energies[1], "{energies:?}");
        assert!(energies[1] > energies[2], "{energies:?}");
    }

    #[test]
    fn fig15_breakdown_partitions_total() {
        let system = CimSystem::new(macro_d()).with_scenario(StorageScenario::WeightStationary);
        let e = system.evaluator().unwrap();
        let report = e
            .evaluate_layer(&small_layer(), &system.representation())
            .unwrap();
        let (on_chip, glb, dram) = CimSystem::fig15_breakdown(&report);
        assert!(on_chip > 0.0 && glb > 0.0 && dram > 0.0);
        assert!(((on_chip + glb + dram) - report.energy_total()).abs() < 1e-15);
    }

    #[test]
    fn system_energy_exceeds_macro_energy() {
        let m = base_macro().uncalibrated();
        let layer = small_layer();
        let macro_report = m
            .raw_evaluator()
            .unwrap()
            .evaluate_layer(&layer, &m.representation())
            .unwrap();
        let system = CimSystem::new(m.clone()).with_scenario(StorageScenario::AllTensorsFromDram);
        let system_report = system
            .evaluator()
            .unwrap()
            .evaluate_layer(&layer, &system.representation())
            .unwrap();
        assert!(system_report.energy_total() > macro_report.energy_total());
    }

    #[test]
    fn larger_arrays_cut_dram_weight_traffic() {
        // Fig 2a's mechanism: a bigger array holds more weights, so fewer
        // DRAM weight fetches for the same workload.
        let net = models::resnet18();
        let layer = &net.layers()[6];
        let mut dram_energy = Vec::new();
        for size in [64u64, 256] {
            let m = base_macro().uncalibrated().with_array(size, size);
            let system = CimSystem::new(m).with_scenario(StorageScenario::AllTensorsFromDram);
            let e = system.evaluator().unwrap();
            let report = e.evaluate_layer(layer, &system.representation()).unwrap();
            dram_energy.push(report.energy_of("dram"));
        }
        assert!(
            dram_energy[0] > dram_energy[1],
            "small-array DRAM {} vs large-array {}",
            dram_energy[0],
            dram_energy[1]
        );
    }
}
