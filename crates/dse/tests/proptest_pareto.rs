//! Property-based tests for the Pareto front and the explorer's
//! bit-identicality guarantee (ISSUE 3 satellite): no front member
//! dominates another, insertion order never changes the front, and the
//! cached/parallel explorer's front equals a naive sequential sweep
//! without the cache.

use cimloop_dse::{summarize, AccuracyObjective, DesignSpace, Explorer, Objectives, ParetoFront};
use cimloop_macros::base_macro;
use cimloop_workload::{Layer, LayerKind, Shape, Workload};
use proptest::prelude::*;

/// Candidate objective vectors over a tiny discrete lattice, so that
/// dominance, ties, and exact duplicates all occur frequently.
fn arb_objectives() -> impl Strategy<Value = Objectives> {
    (1u32..5, 1u32..5, 1u32..5, 1u32..5).prop_map(|(e, t, a, acc)| Objectives {
        energy_per_mac: f64::from(e),
        tops_per_watt: f64::from(t),
        area_mm2: f64::from(a),
        accuracy_proxy: f64::from(acc),
    })
}

fn front_of(candidates: &[(u64, Objectives)]) -> Vec<(u64, [f64; 4])> {
    let mut front = ParetoFront::new();
    for &(id, obj) in candidates {
        front.insert(id, obj, ());
    }
    front
        .members()
        .iter()
        .map(|m| {
            (
                m.id,
                [
                    m.objectives.energy_per_mac,
                    m.objectives.tops_per_watt,
                    m.objectives.area_mm2,
                    m.objectives.accuracy_proxy,
                ],
            )
        })
        .collect()
}

proptest! {
    #[test]
    fn no_member_dominates_another(objs in prop::collection::vec(arb_objectives(), 1..40)) {
        let candidates: Vec<(u64, Objectives)> = objs
            .into_iter()
            .enumerate()
            .map(|(i, o)| (i as u64, o))
            .collect();
        let mut front = ParetoFront::new();
        for &(id, obj) in &candidates {
            front.insert(id, obj, ());
        }
        prop_assert!(!front.is_empty());
        for a in front.members() {
            for b in front.members() {
                if a.id != b.id {
                    prop_assert!(
                        !a.objectives.strictly_dominates(&b.objectives),
                        "front member {} dominates member {}", a.id, b.id
                    );
                    // Objective-equal twins must have collapsed to one id.
                    prop_assert!(
                        !(a.objectives.dominates(&b.objectives)
                            && b.objectives.dominates(&a.objectives)),
                        "objective-equal members {} and {} both retained", a.id, b.id
                    );
                }
            }
        }
    }

    #[test]
    fn insertion_order_does_not_change_the_front(
        objs in prop::collection::vec(arb_objectives(), 1..30),
        swaps in prop::collection::vec((0usize..30, 0usize..30), 0..40),
    ) {
        let candidates: Vec<(u64, Objectives)> = objs
            .into_iter()
            .enumerate()
            .map(|(i, o)| (i as u64, o))
            .collect();
        // A permutation built from random transpositions.
        let mut shuffled = candidates.clone();
        for (i, j) in swaps {
            let (i, j) = (i % shuffled.len(), j % shuffled.len());
            shuffled.swap(i, j);
        }
        prop_assert_eq!(front_of(&candidates), front_of(&shuffled));
    }

    #[test]
    fn every_dominated_candidate_has_a_dominating_member(
        objs in prop::collection::vec(arb_objectives(), 1..25),
    ) {
        let candidates: Vec<(u64, Objectives)> = objs
            .into_iter()
            .enumerate()
            .map(|(i, o)| (i as u64, o))
            .collect();
        let front = front_of(&candidates);
        for &(id, obj) in &candidates {
            let retained = front.iter().any(|&(fid, _)| fid == id);
            if !retained {
                // Rejected candidates are weakly dominated by some member
                // (strictly, or an objective-equal twin with a smaller id).
                let covered = candidates.iter().any(|&(other_id, other)| {
                    front.iter().any(|&(fid, _)| fid == other_id)
                        && other.dominates(&obj)
                        && (other.strictly_dominates(&obj) || other_id < id)
                });
                prop_assert!(covered, "candidate {} vanished without a dominator", id);
            }
        }
    }
}

/// The acceptance-criteria property at sweep scale: the front of an
/// explorer sweep (shared cache, thread pool) equals the front of the
/// same sweep evaluated sequentially without the cache.
#[test]
fn explorer_front_equals_naive_sequential_front() {
    let space = DesignSpace::new()
        .variant("base", base_macro().uncalibrated())
        .variant("adc6", base_macro().uncalibrated().with_adc_bits(6))
        .square_arrays([16, 32])
        .dac_bits([1, 2]);
    let net = Workload::new(
        "tiny",
        vec![
            Layer::new("a", LayerKind::Linear, Shape::linear(2, 24, 24).unwrap()),
            Layer::new("b", LayerKind::Linear, Shape::linear(2, 48, 24).unwrap())
                .with_input_bits(4),
        ],
    )
    .unwrap();

    // Both accuracy objectives (the noise-derived SNR default and the
    // legacy ADC-coverage proxy) must reproduce the naive front.
    for accuracy in [AccuracyObjective::OutputSnr, AccuracyObjective::AdcCoverage] {
        let exploration = Explorer::new()
            .with_accuracy(accuracy)
            .with_threads(4)
            .explore(&space, &net)
            .expect("explorer sweep");

        let mut naive = ParetoFront::new();
        for point in space.designs() {
            let evaluator = point.cim_macro().evaluator().expect("evaluator");
            let run = evaluator
                .evaluate(&net, &point.cim_macro().representation())
                .expect("naive evaluation");
            let report = summarize(&point, &evaluator, &run);
            naive.insert(point.id(), report.objectives_for(accuracy), report);
        }

        assert_eq!(exploration.front.len(), naive.len());
        for (a, b) in exploration.front.members().iter().zip(naive.members()) {
            assert_eq!(a.id, b.id);
            assert_eq!(
                a.objectives, b.objectives,
                "objectives diverged for {} under {accuracy:?}",
                a.id
            );
            assert_eq!(a.value.energy_total, b.value.energy_total);
            assert_eq!(a.value.latency, b.value.latency);
            assert_eq!(a.value.area_mm2, b.value.area_mm2);
        }
    }
}
