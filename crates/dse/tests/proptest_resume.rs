//! Property-based tests of the production-scale sweep machinery
//! (ISSUE 8): a sweep killed after *any* deterministic prefix and
//! resumed through a checkpoint codec round-trip reproduces the
//! uninterrupted front bit-exactly; shard fronts merge to the
//! single-process front in any order; and the checkpoint survives both
//! codecs (yamlite and JSON) without losing a bit.

use cimloop_dse::{
    AccuracyObjective, Checkpoint, DesignSpace, Exploration, Explorer, ParetoFront, Shard,
    SweepPlan,
};
use cimloop_macros::base_macro;
use cimloop_spec::ScenarioDoc;
use cimloop_workload::{Layer, LayerKind, Shape, Workload};
use proptest::prelude::*;

/// An eight-design space with a noise axis, so staged runs exercise the
/// fingerprint-dedup path under `AdcCoverage` and the codec carries both
/// ideal and noisy members.
fn space() -> DesignSpace {
    DesignSpace::new()
        .variant("base", base_macro().uncalibrated())
        .square_arrays([16, 32])
        .dac_bits([1, 2])
        .noise_specs([
            cimloop_noise::NoiseSpec::ideal(),
            cimloop_noise::NoiseSpec::new().with_cell_variation(0.05),
        ])
}

fn workload() -> Workload {
    Workload::new(
        "tiny",
        vec![
            Layer::new("a", LayerKind::Linear, Shape::linear(2, 24, 24).unwrap()),
            Layer::new("b", LayerKind::Linear, Shape::linear(2, 48, 24).unwrap())
                .with_input_bits(4),
        ],
    )
    .unwrap()
}

fn explorer(accuracy: AccuracyObjective) -> Explorer {
    Explorer::new().with_accuracy(accuracy).with_threads(2)
}

/// Asserts two fronts agree member-by-member down to the last bit.
fn assert_bit_identical(a: &Exploration, b: &Exploration) {
    assert_eq!(a.front.len(), b.front.len());
    for (x, y) in a.front.members().iter().zip(b.front.members()) {
        assert_eq!(x.id, y.id);
        assert_eq!(&x.objectives, &y.objectives);
        assert_eq!(
            x.value.energy_total.to_bits(),
            y.value.energy_total.to_bits()
        );
        assert_eq!(x.value.latency.to_bits(), y.value.latency.to_bits());
        assert_eq!(x.value.point.label(), y.value.point.label());
    }
}

fn arb_accuracy() -> impl Strategy<Value = AccuracyObjective> {
    prop_oneof![
        Just(AccuracyObjective::OutputSnr),
        Just(AccuracyObjective::AdcCoverage),
    ]
}

proptest! {
    // Every case runs several full sweeps of real evaluations; keep the
    // case count modest so the suite stays in CI budget.
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Kill-after-any-prefix: stop the sweep after `budget` claimed
    /// candidates, round-trip the checkpoint through its own codec, and
    /// resume — the final front is bit-identical to the uninterrupted
    /// run, whatever the kill point, staging mode, or objective.
    #[test]
    fn resume_after_any_prefix_is_bit_identical(
        budget in 0usize..=8,
        staged in any::<bool>(),
        json in any::<bool>(),
        accuracy in arb_accuracy(),
    ) {
        let (space, net) = (space(), workload());
        let explorer = explorer(accuracy);
        let plan = SweepPlan { staged, ..SweepPlan::new() };
        let whole = explorer.sweep(&space, &net, &plan).unwrap();

        let partial = explorer
            .sweep(&space, &net, &SweepPlan { max_evaluations: Some(budget), ..plan.clone() })
            .unwrap();
        prop_assert_eq!(partial.completed, budget >= whole.processed.len());

        // The kill/restart boundary: progress only survives as a
        // serialized checkpoint, so resume from the decoded copy.
        let checkpoint = Checkpoint::capture("prop", &space, accuracy, &partial);
        let restored = if json {
            Checkpoint::from_doc(&ScenarioDoc::from_json(&checkpoint.to_doc().to_json()).unwrap())
        } else {
            Checkpoint::from_doc(&ScenarioDoc::parse(&checkpoint.to_doc().write()).unwrap())
        }
        .unwrap();
        let resume = restored.resume_state(&space, accuracy).unwrap();
        prop_assert_eq!(&resume.processed, &partial.processed);

        let resumed = explorer
            .sweep(&space, &net, &SweepPlan { resume: Some(resume), ..plan })
            .unwrap();
        prop_assert!(resumed.completed);
        prop_assert_eq!(&resumed.processed, &whole.processed);
        assert_bit_identical(&resumed, &whole);
    }

    /// Shard fronts merge into the single-process front regardless of
    /// merge order — the front is insertion-order-independent, so any
    /// permutation of shard arrivals recombines bit-identically.
    #[test]
    fn shard_merge_is_insertion_order_invariant(
        count in 1usize..=5,
        rotation in 0usize..5,
        staged in any::<bool>(),
        accuracy in arb_accuracy(),
    ) {
        let (space, net) = (space(), workload());
        let explorer = explorer(accuracy);
        let plan = SweepPlan { staged, ..SweepPlan::new() };
        let whole = explorer.sweep(&space, &net, &plan).unwrap();

        let mut parts: Vec<ParetoFront<_>> = (0..count)
            .map(|index| {
                let shard = Shard::new(index, count).unwrap();
                let plan = SweepPlan { shard: Some(shard), ..plan.clone() };
                explorer.sweep(&space, &net, &plan).unwrap().front
            })
            .collect();
        parts.rotate_left(rotation % count);

        let mut merged = ParetoFront::new();
        for part in parts {
            merged.merge(part);
        }
        prop_assert_eq!(merged.len(), whole.front.len());
        for (x, y) in merged.members().iter().zip(whole.front.members()) {
            prop_assert_eq!(x.id, y.id);
            prop_assert_eq!(&x.objectives, &y.objectives);
            prop_assert_eq!(x.value.energy_total.to_bits(), y.value.energy_total.to_bits());
        }
    }
}

/// The codec invariant on its own: capture → encode → decode preserves
/// every stored bit in both encodings, including the non-finite-free
/// but precision-hostile f64 fields (stored as raw bit patterns).
#[test]
fn checkpoint_codecs_round_trip_bit_exactly() {
    let (space, net) = (space(), workload());
    for accuracy in [AccuracyObjective::OutputSnr, AccuracyObjective::AdcCoverage] {
        let exploration = explorer(accuracy)
            .sweep(&space, &net, &SweepPlan::new())
            .unwrap();
        let checkpoint = Checkpoint::capture("codec", &space, accuracy, &exploration);
        for restored in [
            Checkpoint::from_doc(&ScenarioDoc::parse(&checkpoint.to_doc().write()).unwrap())
                .unwrap(),
            Checkpoint::from_doc(&ScenarioDoc::from_json(&checkpoint.to_doc().to_json()).unwrap())
                .unwrap(),
        ] {
            assert_eq!(restored.name(), checkpoint.name());
            assert_eq!(restored.space_fingerprint(), checkpoint.space_fingerprint());
            assert_eq!(restored.accuracy(), checkpoint.accuracy());
            assert_eq!(restored.processed(), checkpoint.processed());
            let a = restored.resume_state(&space, accuracy).unwrap();
            let b = checkpoint.resume_state(&space, accuracy).unwrap();
            assert_eq!(a.front.len(), b.front.len());
            for (x, y) in a.front.members().iter().zip(b.front.members()) {
                assert_eq!(x.id, y.id);
                assert_eq!(
                    x.value.energy_total.to_bits(),
                    y.value.energy_total.to_bits()
                );
                assert_eq!(x.value.latency.to_bits(), y.value.latency.to_bits());
                assert_eq!(
                    x.value.tops_per_watt.to_bits(),
                    y.value.tops_per_watt.to_bits()
                );
                assert_eq!(
                    x.value.output_snr_db.map(f64::to_bits),
                    y.value.output_snr_db.map(f64::to_bits)
                );
            }
        }
    }
}
