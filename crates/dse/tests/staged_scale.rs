//! The ISSUE 8 acceptance property at grid scale: a ≥10^5-candidate
//! design space sweeps to completion through the staged explorer, and on
//! a deterministic subsample the staged front is bit-identical to the
//! naive unstaged path. (The full-grid timing demonstration lives in the
//! release-mode `dse_scale` bench binary; this test keeps the *property*
//! under `cargo test` by thinning the same grid deterministically.)

use cimloop_dse::{AccuracyObjective, DesignSpace, Explorer, SweepPlan};
use cimloop_macros::{base_macro, OutputCombine};
use cimloop_noise::NoiseSpec;
use cimloop_workload::models;

/// The `dse_scale` grid: 96 distinct configurations × a 1200-step noise
/// axis = 115 200 candidates.
fn scale_space() -> DesignSpace {
    DesignSpace::new()
        .variant("direct", base_macro().uncalibrated())
        .variant(
            "accum",
            base_macro()
                .uncalibrated()
                .with_output_combine(OutputCombine::AnalogAccumulator),
        )
        .square_arrays([32, 64, 128, 256])
        .dac_bits([1, 2])
        .adc_bits([4, 6, 8])
        .cell_bits([1, 2])
        .noise_specs((0..1200).map(|i| NoiseSpec::new().with_cell_variation(f64::from(i) / 4800.0)))
}

#[test]
fn staged_front_is_bit_identical_to_naive_on_a_subsampled_scale_grid() {
    let space = scale_space();
    assert!(
        space.grid_len() >= 100_000,
        "the scale grid must hold at least 10^5 candidates, got {}",
        space.grid_len()
    );

    // Deterministic subsample: 3 consecutive ids (noise-twins of one
    // configuration) out of every 2400, so the staged pass has real
    // dedup work on the thinned grid. Ids are assigned before filtering,
    // so the subsample is stable across runs.
    let subsample = scale_space().filter(|p| p.id() % 2400 < 3);
    let net = models::mvm(64, 64);
    let explorer = Explorer::new().with_accuracy(AccuracyObjective::AdcCoverage);

    let staged = explorer
        .sweep(
            &subsample,
            &net,
            &SweepPlan {
                staged: true,
                ..SweepPlan::new()
            },
        )
        .expect("staged sweep");
    let naive = explorer
        .sweep(&subsample, &net, &SweepPlan::new())
        .expect("naive sweep");

    assert!(staged.completed && naive.completed);
    assert!(
        staged.pruned > 0,
        "the noise-twin windows must give the staged pass something to prune"
    );
    assert!(
        staged.evaluated < naive.evaluated,
        "staged must evaluate strictly fewer candidates ({} vs {})",
        staged.evaluated,
        naive.evaluated
    );
    assert_eq!(staged.front.len(), naive.front.len());
    for (a, b) in staged.front.members().iter().zip(naive.front.members()) {
        assert_eq!(a.id, b.id, "front membership diverged");
        assert_eq!(
            a.objectives, b.objectives,
            "objectives diverged for design {}",
            a.id
        );
        assert_eq!(
            a.value.energy_total.to_bits(),
            b.value.energy_total.to_bits(),
            "energy diverged for design {}",
            a.id
        );
        assert_eq!(
            a.value.latency.to_bits(),
            b.value.latency.to_bits(),
            "latency diverged for design {}",
            a.id
        );
        assert_eq!(a.value.point.label(), b.value.point.label());
    }
}
