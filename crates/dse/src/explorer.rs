//! The parallel design-space explorer.
//!
//! Candidate designs fan out over a scoped thread pool (work-stealing by
//! design index, the same discipline as
//! [`cimloop_system::NetworkEngine`]), all workers sharing one
//! [`EnergyTableCache`]. Table signatures differ per design (each design
//! is its own hierarchy), but the expensive hierarchy-independent value
//! statistics are keyed only by `(layer values, representation, reduction
//! width)` — so designs that differ in ADC resolution, output-combining
//! topology, or cell technology amortize the column-sum convolution across
//! each other, and layers within a design share finished tables.
//!
//! Results stream into a [`ParetoFront`] as workers finish; only the
//! non-dominated [`DesignReport`]s are retained, so sweeps of 10k+
//! designs never materialize all reports. The front is bit-identical to a
//! naive sequential sweep without the cache: cached statistics are
//! computed by the same code as fresh ones, and the front is
//! insertion-order-independent.
//!
//! Production-scale sweeps go through [`Explorer::sweep`] with a
//! [`SweepPlan`], which layers three mechanisms on the same streaming
//! core without changing the resulting front:
//!
//! - **Staged evaluation** (`staged`): a cheap stage-one pass prunes
//!   objective-equivalent duplicate configurations by fingerprint and
//!   screens candidates against the space's declared area/coverage
//!   constraints before any value statistics are computed.
//! - **Budgeted runs + resume** (`max_evaluations`, `resume`): a budget
//!   deterministically claims a prefix of the remaining candidates; the
//!   resulting [`Exploration::processed`] ids plus front round-trip
//!   through [`crate::Checkpoint`] and seed a later resumed run whose
//!   final front is bit-identical to an uninterrupted sweep.
//! - **Sharding** (`shard`): candidate `i` of the filtered grid belongs
//!   to shard `i % count`; per-shard fronts recombine with
//!   [`ParetoFront::merge`] into the same front a single process
//!   produces, because the front is insertion-order-independent and
//!   equal-objective classes collapse to the globally smallest id.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use cimloop_core::{CoreError, EnergyTableCache, Evaluator, Representation, RunReport};
use cimloop_macros::ArrayMacro;
use cimloop_noise::SNR_CAP_DB;
use cimloop_sim::{mc_workload, McConfig};
use cimloop_system::{CimSystem, StorageScenario};
use cimloop_workload::Workload;

use crate::pareto::{Objectives, ParetoFront};
use crate::shard::Shard;
use crate::space::{DesignPoint, DesignSpace};

/// What each candidate design is evaluated as.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EvalScope {
    /// The bare macro (paper Fig 2a's "macro-optimal" view).
    #[default]
    MacroOnly,
    /// The macro nested in a full [`CimSystem`] (DRAM + global buffer +
    /// NoC) under the given storage scenario — the view in which Fig 2's
    /// co-design conclusion holds.
    System(StorageScenario),
}

/// How a design's accuracy axis is scored for Pareto comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AccuracyObjective {
    /// The noise-derived expected output SNR (dB) from the statistical
    /// non-ideality subsystem: quantization, cell variation, read noise,
    /// and ADC offset, composed over the data-value distributions. The
    /// default.
    #[default]
    OutputSnr,
    /// The legacy ADC-coverage proxy (fraction of the column-sum
    /// bit-width the converter resolves). Kept behind this constructor
    /// for golden continuity with pre-noise sweeps.
    AdcCoverage,
    /// Empirical end-to-end task accuracy from seeded Monte-Carlo noise
    /// injection (`cimloop_sim::mc_workload`): the MAC-weighted fraction
    /// of column readouts landing on the ideal ADC code. Trades energy
    /// against real accuracy cliffs instead of the SNR proxy; costs one
    /// fixed-seed sampling run per surviving design.
    TaskAccuracy,
}

impl AccuracyObjective {
    /// Parses the spec-level objective name (`snr`, `adc_coverage`, or
    /// `task_accuracy`); `None` for anything else.
    pub fn parse(name: &str) -> Option<Self> {
        match name {
            "snr" => Some(AccuracyObjective::OutputSnr),
            "adc_coverage" => Some(AccuracyObjective::AdcCoverage),
            "task_accuracy" => Some(AccuracyObjective::TaskAccuracy),
            _ => None,
        }
    }

    /// The spec-level objective name ([`Self::parse`]'s inverse).
    pub fn as_str(self) -> &'static str {
        match self {
            AccuracyObjective::OutputSnr => "snr",
            AccuracyObjective::AdcCoverage => "adc_coverage",
            AccuracyObjective::TaskAccuracy => "task_accuracy",
        }
    }
}

/// The retained summary of one evaluated design: its configuration, the
/// objective scalars, and workload-level aggregates. Deliberately *not*
/// the full [`RunReport`] — a streaming sweep holds one of these per
/// front member, not per design.
#[derive(Debug, Clone)]
pub struct DesignReport {
    /// The evaluated design point (configuration record).
    pub point: DesignPoint,
    /// Total workload energy, joules.
    pub energy_total: f64,
    /// Energy per useful word-level MAC, joules.
    pub energy_per_mac: f64,
    /// Energy efficiency, TOPS/W.
    pub tops_per_watt: f64,
    /// Total workload latency, seconds.
    pub latency: f64,
    /// Total silicon area, mm².
    pub area_mm2: f64,
    /// The ADC-coverage accuracy proxy, in `[0, 1]`.
    pub accuracy_proxy: f64,
    /// The workload's worst-layer expected output SNR in dB from the
    /// noise subsystem (`None` when no analog readout is modeled, i.e.
    /// digital designs that resolve every bit).
    pub output_snr_db: Option<f64>,
    /// Empirical MAC-weighted end-to-end task accuracy from the seeded
    /// Monte-Carlo engine, in `[0, 1]`. Populated only when the
    /// [`AccuracyObjective::TaskAccuracy`] objective asked for it
    /// (sampling is not free); `None` otherwise.
    pub task_accuracy: Option<f64>,
    /// Total useful MACs of the workload.
    pub macs: u64,
}

impl DesignReport {
    /// The design's objective vector under the legacy ADC-coverage
    /// accuracy proxy (what pre-noise sweeps scored).
    ///
    /// Note this is **not** the [`Explorer::new`] default
    /// ([`AccuracyObjective::OutputSnr`]): when hand-building a baseline
    /// front to compare against an explorer's, score both sides with
    /// [`Self::objectives_for`] and one explicit objective.
    pub fn objectives(&self) -> Objectives {
        self.objectives_for(AccuracyObjective::AdcCoverage)
    }

    /// The design's objective vector with the accuracy axis scored per
    /// `accuracy`. Digital (no-ADC) designs resolve every bit, so under
    /// [`AccuracyObjective::OutputSnr`] they score the SNR cap and under
    /// [`AccuracyObjective::TaskAccuracy`] a perfect `1.0` (a readout
    /// that resolves every bit always lands on the ideal code).
    pub fn objectives_for(&self, accuracy: AccuracyObjective) -> Objectives {
        let accuracy_proxy = match accuracy {
            AccuracyObjective::AdcCoverage => self.accuracy_proxy,
            AccuracyObjective::OutputSnr => self.output_snr_db.unwrap_or(SNR_CAP_DB),
            AccuracyObjective::TaskAccuracy => self.task_accuracy.unwrap_or(1.0),
        };
        Objectives {
            energy_per_mac: self.energy_per_mac,
            tops_per_watt: self.tops_per_watt,
            area_mm2: self.area_mm2,
            accuracy_proxy,
        }
    }
}

/// The accuracy proxy of a macro configuration: the fraction of the full
/// column-sum bit-width the output converter resolves.
///
/// A column sum over `rows` products of `dac_bits`-bit inputs and
/// `cell_bits`-bit weights spans `dac_bits + cell_bits + ⌈log₂ rows⌉`
/// bits; an ADC of fewer bits quantizes it and loses output fidelity
/// (paper §III-D3). Digital readout resolves every bit. This is a
/// *proxy* — a monotone stand-in for simulated task accuracy, not a
/// simulated accuracy itself.
pub fn accuracy_proxy(m: &ArrayMacro) -> f64 {
    let no_adc = m
        .hierarchy()
        .map(|h| h.component("adc").is_none())
        .unwrap_or(false);
    if no_adc {
        return 1.0;
    }
    // ⌈log₂ rows⌉ extra bits to hold a `rows`-way sum without overflow.
    let sum_carry_bits = 64 - m.rows().max(1).saturating_sub(1).leading_zeros();
    let sum_bits = m.dac_bits() + m.cell_bits() + sum_carry_bits;
    f64::from(m.adc_bits().min(sum_bits)) / f64::from(sum_bits)
}

/// How a [`Explorer::sweep`] run is shaped: staging, sharding, budgets,
/// and resume state. [`Default`] is a plain full sweep (what
/// [`Explorer::explore`] runs).
#[derive(Debug, Clone, Default)]
pub struct SweepPlan {
    /// Enables the stage-one pre-pass: fingerprint deduplication of
    /// objective-equivalent configurations, plus the cheap
    /// area/coverage screens of the space (which apply regardless).
    pub staged: bool,
    /// Restricts the run to one shard of the filtered candidate list
    /// (candidate `i` belongs to shard `i % count`). An empty shard is
    /// legal and yields an empty front.
    pub shard: Option<Shard>,
    /// Stops after claiming this many candidates (the *prefix* of the
    /// remaining work list, deterministically, regardless of thread
    /// timing). `None` runs to completion.
    pub max_evaluations: Option<usize>,
    /// Prior progress to resume from: its processed ids are skipped and
    /// its front seeds this run's front.
    pub resume: Option<SweepState>,
}

impl SweepPlan {
    /// A plain full-sweep plan.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Resumable sweep progress: what a [`crate::Checkpoint`] stores and
/// what [`SweepPlan::resume`] replays.
#[derive(Debug, Clone)]
pub struct SweepState {
    /// The Pareto front accumulated so far.
    pub front: ParetoFront<DesignReport>,
    /// Ids of every candidate already processed (evaluated *or*
    /// screened out by the cheap stage-one constraints).
    pub processed: Vec<u64>,
}

/// The result of one exploration.
#[derive(Debug)]
pub struct Exploration {
    /// The non-dominated designs, ascending by design id.
    pub front: ParetoFront<DesignReport>,
    /// How many designs were fully evaluated this run (stage two:
    /// value statistics + energy/latency).
    pub evaluated: usize,
    /// How many candidates the cheap stage-one constraints screened out
    /// this run (evaluator built, no value statistics).
    pub screened: usize,
    /// How many candidates stage-one fingerprint deduplication pruned
    /// this run (no evaluator built at all). Always 0 unless
    /// [`SweepPlan::staged`] is set.
    pub pruned: usize,
    /// Ids of every processed candidate — this run's plus any resumed
    /// prior progress — ascending. This is what a checkpoint persists.
    pub processed: Vec<u64>,
    /// `false` iff a [`SweepPlan::max_evaluations`] budget stopped the
    /// sweep before the work list was exhausted.
    pub completed: bool,
}

impl Exploration {
    /// This exploration's resumable progress (front + processed ids),
    /// for checkpointing a budget-stopped run.
    pub fn state(&self) -> SweepState {
        SweepState {
            front: self.front.clone(),
            processed: self.processed.clone(),
        }
    }
}

/// A parallel, cache-amortized design-space explorer.
///
/// # Example
///
/// ```
/// use cimloop_dse::{DesignSpace, Explorer};
/// use cimloop_macros::base_macro;
/// use cimloop_workload::{Layer, LayerKind, Shape, Workload};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let space = DesignSpace::new()
///     .variant("base", base_macro().uncalibrated())
///     .adc_bits([4, 8]);
/// let net = Workload::new(
///     "net",
///     vec![Layer::new("a", LayerKind::Linear, Shape::linear(2, 24, 24)?)],
/// )?;
/// let exploration = Explorer::new().with_threads(1).explore(&space, &net)?;
/// assert_eq!(exploration.evaluated, 2);
/// assert!(!exploration.front.is_empty());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Explorer {
    scope: EvalScope,
    threads: usize,
    accuracy: AccuracyObjective,
    cache: Arc<EnergyTableCache>,
}

impl Default for Explorer {
    fn default() -> Self {
        Self::new()
    }
}

impl Explorer {
    /// A macro-scope explorer using every available core, a fresh cache,
    /// and the noise-derived [`AccuracyObjective::OutputSnr`] accuracy
    /// axis.
    pub fn new() -> Self {
        Explorer {
            scope: EvalScope::default(),
            threads: 0,
            accuracy: AccuracyObjective::default(),
            cache: Arc::new(EnergyTableCache::new()),
        }
    }

    /// An explorer scoring accuracy with the legacy ADC-coverage proxy —
    /// the pre-noise behaviour, kept for golden continuity (the committed
    /// `dse_sweep` front was produced under this objective).
    pub fn with_adc_coverage_accuracy() -> Self {
        Self::new().with_accuracy(AccuracyObjective::AdcCoverage)
    }

    /// Sets the evaluation scope.
    pub fn with_scope(mut self, scope: EvalScope) -> Self {
        self.scope = scope;
        self
    }

    /// Sets the accuracy objective of the Pareto front's accuracy axis.
    pub fn with_accuracy(mut self, accuracy: AccuracyObjective) -> Self {
        self.accuracy = accuracy;
        self
    }

    /// The configured accuracy objective.
    pub fn accuracy(&self) -> AccuracyObjective {
        self.accuracy
    }

    /// Sets the worker-thread count. `0` (the default) resolves to
    /// [`std::thread::available_parallelism`]; `1` evaluates designs
    /// sequentially on the calling thread (still cached).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Shares an existing cache (e.g. between a macro-scope and a
    /// system-scope exploration of the same grid, which have equal
    /// reduction widths and so share all value statistics).
    pub fn with_cache(mut self, cache: Arc<EnergyTableCache>) -> Self {
        self.cache = cache;
        self
    }

    /// The shared cache (for hit/miss introspection).
    pub fn cache(&self) -> &EnergyTableCache {
        &self.cache
    }

    /// Explores `space` on `workload`, streaming results into a Pareto
    /// front.
    ///
    /// # Errors
    ///
    /// Propagates evaluator and evaluation errors; on the first failure
    /// the sweep aborts (workers stop pulling designs) and the error of
    /// the earliest claimed failing design is returned.
    pub fn explore(
        &self,
        space: &DesignSpace,
        workload: &Workload,
    ) -> Result<Exploration, CoreError> {
        self.explore_with(space, workload, |_| {})
    }

    /// Like [`Self::explore`], additionally passing every finished
    /// [`DesignReport`] to `sink` (called from worker threads, in
    /// completion order — not id order).
    ///
    /// # Errors
    ///
    /// See [`Self::explore`].
    pub fn explore_with(
        &self,
        space: &DesignSpace,
        workload: &Workload,
        sink: impl Fn(&DesignReport) + Sync,
    ) -> Result<Exploration, CoreError> {
        self.sweep_with(space, workload, &SweepPlan::default(), sink)
    }

    /// Runs a planned sweep: staged, sharded, budgeted, or resumed per
    /// `plan` (see [`SweepPlan`]). The resulting front is bit-identical
    /// to [`Self::explore`]'s on the same space (modulo plan-declared
    /// restrictions: a shard's front covers only its candidates, a
    /// budget-stopped run only the claimed prefix).
    ///
    /// # Errors
    ///
    /// [`CoreError::EmptySpace`] when the unsharded space yields zero
    /// candidates (no variants, or everything filtered away) — a
    /// misconfigured sweep must not masquerade as a completed one.
    /// Evaluation errors abort the sweep as in [`Self::explore`].
    pub fn sweep(
        &self,
        space: &DesignSpace,
        workload: &Workload,
        plan: &SweepPlan,
    ) -> Result<Exploration, CoreError> {
        self.sweep_with(space, workload, plan, |_| {})
    }

    /// [`Self::sweep`] with a per-report `sink` (see
    /// [`Self::explore_with`]).
    ///
    /// # Errors
    ///
    /// See [`Self::sweep`].
    pub fn sweep_with(
        &self,
        space: &DesignSpace,
        workload: &Workload,
        plan: &SweepPlan,
        sink: impl Fn(&DesignReport) + Sync,
    ) -> Result<Exploration, CoreError> {
        let mut candidates = space.designs();
        if candidates.is_empty() && plan.shard.is_none() {
            let message = if space.grid_len() == 0 {
                "the space declares no design variants".to_owned()
            } else {
                format!(
                    "all {} grid candidate(s) were removed by the space filter",
                    space.grid_len()
                )
            };
            return Err(CoreError::EmptySpace { message });
        }
        if let Some(shard) = plan.shard {
            candidates = candidates
                .into_iter()
                .enumerate()
                .filter(|(i, _)| i % shard.count() == shard.index())
                .map(|(_, p)| p)
                .collect();
        }

        // Stage one, part A: fingerprint deduplication. Designs with equal
        // configuration fingerprints score identical objectives, so only
        // the smallest-id representative of each class can survive the
        // front's equal-twin rule — prune the rest before building
        // anything. Under the SNR objective the noise spec participates in
        // the class key; under ADC coverage, noise provably changes no
        // objective, so noise-twin designs collapse too. Dedup runs on the
        // full (sharded) list *before* the resume skip so the class
        // representative never shifts between a run and its resume.
        let mut pruned = 0usize;
        if plan.staged {
            let include_noise = matches!(
                self.accuracy,
                AccuracyObjective::OutputSnr | AccuracyObjective::TaskAccuracy
            );
            let mut seen = std::collections::BTreeSet::new();
            candidates.retain(|p| {
                if seen.insert(p.cim_macro().config_fingerprint(include_noise)) {
                    true
                } else {
                    pruned += 1;
                    false
                }
            });
        }

        let mut prior: Vec<u64> = Vec::new();
        let mut seed = ParetoFront::new();
        if let Some(state) = &plan.resume {
            let done: std::collections::BTreeSet<u64> = state.processed.iter().copied().collect();
            candidates.retain(|p| !done.contains(&p.id()));
            prior = state.processed.clone();
            seed = state.front.clone();
        }

        // A budget claims a deterministic prefix of the remaining work
        // list: workers stop pulling at `limit`, so the claimed set is
        // the first `limit` candidates regardless of thread timing.
        let limit = plan
            .max_evaluations
            .map_or(candidates.len(), |k| k.min(candidates.len()));
        let completed = limit == candidates.len();
        let claimed = &candidates[..limit];

        let threads = self.resolved_threads(limit);
        let front = Mutex::new(seed);
        let evaluated = AtomicUsize::new(0);
        let screened = AtomicUsize::new(0);

        if threads <= 1 {
            for point in claimed {
                match self.screened_report(point, space, workload)? {
                    Some(report) => {
                        evaluated.fetch_add(1, Ordering::Relaxed);
                        sink(&report);
                        front.lock().expect("front lock poisoned").insert(
                            point.id(),
                            report.objectives_for(self.accuracy),
                            report,
                        );
                    }
                    None => {
                        screened.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
        } else {
            let next = AtomicUsize::new(0);
            let failed = AtomicBool::new(false);
            let mut failures: Vec<(u64, CoreError)> = std::thread::scope(|scope| {
                let mut handles = Vec::with_capacity(threads);
                for _ in 0..threads {
                    let next = &next;
                    let failed = &failed;
                    let front = &front;
                    let evaluated = &evaluated;
                    let screened = &screened;
                    let sink = &sink;
                    let this = self;
                    handles.push(scope.spawn(move || {
                        let mut errors = Vec::new();
                        while !failed.load(Ordering::Relaxed) {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= limit {
                                break;
                            }
                            let point = &claimed[i];
                            match this.screened_report(point, space, workload) {
                                Ok(Some(report)) => {
                                    evaluated.fetch_add(1, Ordering::Relaxed);
                                    sink(&report);
                                    front.lock().expect("front lock poisoned").insert(
                                        point.id(),
                                        report.objectives_for(this.accuracy),
                                        report,
                                    );
                                }
                                Ok(None) => {
                                    screened.fetch_add(1, Ordering::Relaxed);
                                }
                                Err(e) => {
                                    failed.store(true, Ordering::Relaxed);
                                    errors.push((point.id(), e));
                                }
                            }
                        }
                        errors
                    }));
                }
                handles
                    .into_iter()
                    .flat_map(|h| h.join().expect("explorer worker panicked"))
                    .collect()
            });
            failures.sort_by_key(|&(id, _)| id);
            if let Some((_, error)) = failures.into_iter().next() {
                return Err(error);
            }
        }

        let mut processed = prior;
        processed.extend(claimed.iter().map(DesignPoint::id));
        processed.sort_unstable();
        Ok(Exploration {
            front: front.into_inner().expect("front lock poisoned"),
            evaluated: evaluated.load(Ordering::Relaxed),
            screened: screened.load(Ordering::Relaxed),
            pruned,
            processed,
            completed,
        })
    }

    /// One candidate through both stages: build the evaluator, apply the
    /// cheap stage-one screens (total area against
    /// [`DesignSpace::area_cap`], coverage proxy against
    /// [`DesignSpace::coverage_floor`] — no value statistics yet), and
    /// only then run the full cached evaluation. `None` means screened
    /// out.
    fn screened_report(
        &self,
        point: &DesignPoint,
        space: &DesignSpace,
        workload: &Workload,
    ) -> Result<Option<DesignReport>, CoreError> {
        let (evaluator, rep) = self.evaluator_for(point)?;
        let cheap = evaluator.cheap_metrics();
        if let Some(cap) = space.area_cap() {
            if cheap.area_mm2 > cap {
                return Ok(None);
            }
        }
        if let Some(floor) = space.coverage_floor() {
            if accuracy_proxy(point.cim_macro()) < floor {
                return Ok(None);
            }
        }
        let run = evaluator.evaluate_cached(workload, &rep, &self.cache)?;
        let mut report = summarize(point, &evaluator, &run);
        if self.accuracy == AccuracyObjective::TaskAccuracy {
            report.task_accuracy = Some(task_accuracy_of(point.cim_macro(), workload)?);
        }
        Ok(Some(report))
    }

    /// Evaluates one design through the shared cache.
    ///
    /// # Errors
    ///
    /// Propagates evaluator construction and evaluation errors.
    pub fn evaluate_design(
        &self,
        point: &DesignPoint,
        workload: &Workload,
    ) -> Result<DesignReport, CoreError> {
        let (evaluator, rep) = self.evaluator_for(point)?;
        let run = evaluator.evaluate_cached(workload, &rep, &self.cache)?;
        let mut report = summarize(point, &evaluator, &run);
        if self.accuracy == AccuracyObjective::TaskAccuracy {
            report.task_accuracy = Some(task_accuracy_of(point.cim_macro(), workload)?);
        }
        Ok(report)
    }

    /// Builds the scoped evaluator and representation for one design.
    fn evaluator_for(&self, point: &DesignPoint) -> Result<(Evaluator, Representation), CoreError> {
        match self.scope {
            EvalScope::MacroOnly => Ok((
                point.cim_macro().evaluator()?,
                point.cim_macro().representation(),
            )),
            EvalScope::System(scenario) => {
                let system = CimSystem::new(point.cim_macro().clone()).with_scenario(scenario);
                Ok((system.evaluator()?, system.representation()))
            }
        }
    }

    /// The resolved worker count for `designs` candidates.
    fn resolved_threads(&self, designs: usize) -> usize {
        let configured = if self.threads == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            self.threads
        };
        configured.clamp(1, designs.max(1))
    }
}

/// Trials of the fixed Monte-Carlo configuration the
/// [`AccuracyObjective::TaskAccuracy`] objective scores designs with.
/// Pinned (with the engine's default seed) so sweep fronts are
/// deterministic goldens.
pub const TASK_ACCURACY_TRIALS: u64 = 2048;

/// The end-to-end Monte-Carlo task accuracy the
/// [`AccuracyObjective::TaskAccuracy`] objective scores `m` with: the
/// fixed-seed, [`TASK_ACCURACY_TRIALS`]-trial `cimloop_sim::mc_workload`
/// reduction. An ideal noise spec short-circuits to exactly `1.0` — the
/// engine's zero-sigma identity guarantees the sampled path would return
/// the same bits, so the fast path is not an approximation.
///
/// Shared by the explorer and by naive sweeps so the explorer == naive
/// bit-identity property extends to this objective.
///
/// # Errors
///
/// Propagates evaluator construction and distribution errors.
pub fn task_accuracy_of(m: &ArrayMacro, workload: &Workload) -> Result<f64, CoreError> {
    if m.noise().is_ideal() {
        return Ok(1.0);
    }
    let cfg = McConfig::new(TASK_ACCURACY_TRIALS);
    Ok(mc_workload(m, workload, &cfg)?.task_accuracy)
}

/// Folds a finished run into the retained per-design summary. Shared by
/// the explorer and by naive sweeps that want comparable reports. The
/// `task_accuracy` field stays `None` — only the
/// [`AccuracyObjective::TaskAccuracy`] objective pays for sampling (see
/// [`task_accuracy_of`]).
pub fn summarize(point: &DesignPoint, evaluator: &Evaluator, run: &RunReport) -> DesignReport {
    DesignReport {
        point: point.clone(),
        energy_total: run.energy_total(),
        energy_per_mac: run.energy_per_mac(),
        tops_per_watt: run.tops_per_watt(),
        latency: run.latency_total(),
        area_mm2: evaluator.area().total_mm2(),
        accuracy_proxy: accuracy_proxy(point.cim_macro()),
        output_snr_db: run.output_snr_db(),
        task_accuracy: None,
        macs: run.macs_total(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::DesignSpace;
    use cimloop_macros::base_macro;
    use cimloop_workload::{Layer, LayerKind, Shape};

    fn tiny_workload() -> Workload {
        Workload::new(
            "tiny",
            vec![
                Layer::new("a", LayerKind::Linear, Shape::linear(2, 24, 24).unwrap()),
                Layer::new("b", LayerKind::Linear, Shape::linear(2, 48, 24).unwrap())
                    .with_input_bits(4),
            ],
        )
        .unwrap()
    }

    fn tiny_space() -> DesignSpace {
        DesignSpace::new()
            .variant("base", base_macro().uncalibrated())
            .variant("adc4", base_macro().uncalibrated().with_adc_bits(4))
            .square_arrays([16, 32])
            .dac_bits([1, 2])
    }

    #[test]
    fn explorer_matches_naive_sequential_sweep() {
        let space = tiny_space().noise_specs([
            cimloop_noise::NoiseSpec::ideal(),
            cimloop_noise::NoiseSpec::new().with_cell_variation(0.15),
        ]);
        let net = tiny_workload();
        // Every objective must match a naive uncached sweep bit-for-bit.
        for accuracy in [
            AccuracyObjective::AdcCoverage,
            AccuracyObjective::OutputSnr,
            AccuracyObjective::TaskAccuracy,
        ] {
            let explorer = Explorer::new().with_accuracy(accuracy).with_threads(2);
            let exploration = explorer.explore(&space, &net).unwrap();
            assert_eq!(exploration.evaluated, 16);

            // Naive: fresh evaluator per design, no cache, the shared
            // summarize + task-accuracy helpers.
            let mut naive = ParetoFront::new();
            for point in space.designs() {
                let evaluator = point.cim_macro().evaluator().unwrap();
                let run = evaluator
                    .evaluate(&net, &point.cim_macro().representation())
                    .unwrap();
                let mut report = summarize(&point, &evaluator, &run);
                if accuracy == AccuracyObjective::TaskAccuracy {
                    report.task_accuracy = Some(task_accuracy_of(point.cim_macro(), &net).unwrap());
                }
                naive.insert(point.id(), report.objectives_for(accuracy), report);
            }

            assert_eq!(exploration.front.len(), naive.len());
            for (a, b) in exploration.front.members().iter().zip(naive.members()) {
                assert_eq!(a.id, b.id);
                assert_eq!(a.objectives, b.objectives);
                assert_eq!(a.value.energy_total, b.value.energy_total);
                assert_eq!(a.value.task_accuracy, b.value.task_accuracy);
            }
        }
    }

    #[test]
    fn task_accuracy_objective_separates_noisy_twins_and_is_exact_when_ideal() {
        let quiet = base_macro().uncalibrated();
        let noisy = base_macro()
            .uncalibrated()
            .with_noise(cimloop_noise::NoiseSpec::new().with_cell_variation(0.2));
        let net = tiny_workload();
        // Ideal spec short-circuits to exactly 1.0; a sampled run agrees
        // bit-for-bit (the engine's zero-sigma identity).
        assert_eq!(task_accuracy_of(&quiet, &net).unwrap(), 1.0);
        let sampled = cimloop_sim::mc_workload(&quiet, &net, &McConfig::new(TASK_ACCURACY_TRIALS))
            .unwrap()
            .task_accuracy;
        assert_eq!(sampled, 1.0);
        // Variation must cost real accuracy under the sampled objective.
        let lossy = task_accuracy_of(&noisy, &net).unwrap();
        assert!(lossy < 1.0, "variation left task accuracy at {lossy}");
        // And the explorer populates the report field under the objective.
        let space = DesignSpace::new().variant("noisy", noisy);
        let explorer = Explorer::new()
            .with_accuracy(AccuracyObjective::TaskAccuracy)
            .with_threads(1);
        let front = explorer.explore(&space, &net).unwrap().front;
        assert_eq!(front.members()[0].value.task_accuracy, Some(lossy));
    }

    #[test]
    fn legacy_constructor_scores_adc_coverage() {
        let explorer = Explorer::with_adc_coverage_accuracy();
        assert_eq!(explorer.accuracy(), AccuracyObjective::AdcCoverage);
        assert_eq!(Explorer::new().accuracy(), AccuracyObjective::OutputSnr);
    }

    #[test]
    fn snr_objective_separates_noisy_designs_where_the_proxy_cannot() {
        // Two designs identical except for cell variation: the ADC
        // coverage proxy scores them equally, the SNR objective does not.
        let quiet = base_macro().uncalibrated();
        let noisy = base_macro()
            .uncalibrated()
            .with_noise(cimloop_noise::NoiseSpec::new().with_cell_variation(0.2));
        let space = DesignSpace::new()
            .variant("quiet", quiet)
            .variant("noisy", noisy);
        let net = tiny_workload();
        let explorer = Explorer::new().with_threads(1);
        let mut reports: Vec<DesignReport> = Vec::new();
        for point in space.designs() {
            reports.push(explorer.evaluate_design(&point, &net).unwrap());
        }
        assert_eq!(reports[0].accuracy_proxy, reports[1].accuracy_proxy);
        let quiet_snr = reports[0].output_snr_db.unwrap();
        let noisy_snr = reports[1].output_snr_db.unwrap();
        assert!(noisy_snr < quiet_snr, "{noisy_snr} vs {quiet_snr}");
        let o_quiet = reports[0].objectives_for(AccuracyObjective::OutputSnr);
        let o_noisy = reports[1].objectives_for(AccuracyObjective::OutputSnr);
        assert!(o_quiet.accuracy_proxy > o_noisy.accuracy_proxy);
    }

    #[test]
    fn stats_are_shared_across_designs() {
        let space = tiny_space();
        let net = tiny_workload();
        let explorer = Explorer::new().with_threads(1);
        let exploration = explorer.explore(&space, &net).unwrap();
        assert_eq!(exploration.evaluated, 8);
        // 8 designs × 2 layers = 16 table computations (every design is a
        // distinct hierarchy) …
        assert_eq!(explorer.cache().misses(), 16);
        // … but the ADC variant shares all value statistics with the base
        // variant: 2 sizes × 2 dacs × 2 layer signatures = 8 distinct.
        assert_eq!(explorer.cache().stats_len(), 8);
        assert_eq!(explorer.cache().stats_misses(), 8);
        assert_eq!(explorer.cache().stats_hits(), 8);
    }

    #[test]
    fn system_scope_exceeds_macro_scope_energy() {
        let space = DesignSpace::new().variant("base", base_macro().uncalibrated());
        let net = tiny_workload();
        let macro_front = Explorer::new().explore(&space, &net).unwrap().front;
        let system_front = Explorer::new()
            .with_scope(EvalScope::System(StorageScenario::AllTensorsFromDram))
            .explore(&space, &net)
            .unwrap()
            .front;
        assert!(
            system_front.members()[0].value.energy_total
                > macro_front.members()[0].value.energy_total
        );
    }

    #[test]
    fn accuracy_proxy_tracks_adc_coverage() {
        let m = base_macro().uncalibrated().with_array(256, 256);
        // Full sum width: 1 (dac) + 2 (cell) + 8 (log2 rows) = 11 bits.
        let full = m.clone().with_adc_bits(11);
        let half = m.clone().with_adc_bits(5);
        assert!((accuracy_proxy(&full) - 1.0).abs() < 1e-12);
        assert!(accuracy_proxy(&half) < accuracy_proxy(&full));
        assert!((accuracy_proxy(&half) - 5.0 / 11.0).abs() < 1e-12);
        // Digital readout resolves every bit.
        let digital = cimloop_macros::digital_cim().uncalibrated();
        assert!((accuracy_proxy(&digital) - 1.0).abs() < 1e-12);
    }

    fn assert_fronts_identical(a: &ParetoFront<DesignReport>, b: &ParetoFront<DesignReport>) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.members().iter().zip(b.members()) {
            assert_eq!(x.id, y.id);
            assert_eq!(x.objectives, y.objectives);
            assert_eq!(
                x.value.energy_total.to_bits(),
                y.value.energy_total.to_bits()
            );
            assert_eq!(x.value.latency.to_bits(), y.value.latency.to_bits());
        }
    }

    #[test]
    fn staged_sweep_prunes_noise_twins_and_matches_plain_front() {
        // Under the ADC-coverage objective, noise specs change no
        // objective: the staged pre-pass prunes noise twins without
        // evaluating them, and the front stays bit-identical.
        let space = tiny_space().noise_specs([
            cimloop_noise::NoiseSpec::ideal(),
            cimloop_noise::NoiseSpec::new().with_cell_variation(0.1),
        ]);
        let net = tiny_workload();
        let explorer = Explorer::with_adc_coverage_accuracy().with_threads(2);
        let plain = explorer.explore(&space, &net).unwrap();
        assert_eq!(plain.evaluated, 16);
        let staged = explorer
            .sweep(
                &space,
                &net,
                &SweepPlan {
                    staged: true,
                    ..SweepPlan::default()
                },
            )
            .unwrap();
        assert_eq!(staged.evaluated, 8, "one representative per energy class");
        assert_eq!(staged.pruned, 8);
        assert!(staged.completed);
        assert_fronts_identical(&staged.front, &plain.front);

        // Under the SNR objective noise twins differ, so nothing prunes.
        let snr = Explorer::new().with_threads(2);
        let staged_snr = snr
            .sweep(
                &space,
                &net,
                &SweepPlan {
                    staged: true,
                    ..SweepPlan::default()
                },
            )
            .unwrap();
        assert_eq!(staged_snr.pruned, 0);
        assert_fronts_identical(&staged_snr.front, &snr.explore(&space, &net).unwrap().front);
    }

    #[test]
    fn sharded_fronts_merge_into_the_single_process_front() {
        let space = tiny_space();
        let net = tiny_workload();
        let explorer = Explorer::new().with_threads(2);
        let whole = explorer.explore(&space, &net).unwrap();
        let mut merged = ParetoFront::new();
        let mut total = 0;
        for index in 0..3 {
            let plan = SweepPlan {
                shard: Some(Shard::new(index, 3).unwrap()),
                ..SweepPlan::default()
            };
            let part = explorer.sweep(&space, &net, &plan).unwrap();
            total += part.evaluated;
            merged.merge(part.front);
        }
        assert_eq!(total, whole.evaluated);
        assert_fronts_identical(&merged, &whole.front);
    }

    #[test]
    fn budgeted_run_resumes_to_the_full_front() {
        let space = tiny_space();
        let net = tiny_workload();
        let explorer = Explorer::new().with_threads(2);
        let whole = explorer.explore(&space, &net).unwrap();

        let first = explorer
            .sweep(
                &space,
                &net,
                &SweepPlan {
                    max_evaluations: Some(3),
                    ..SweepPlan::default()
                },
            )
            .unwrap();
        assert!(!first.completed);
        assert_eq!(
            first.processed,
            vec![0, 1, 2],
            "budget claims the id prefix"
        );

        let resumed = explorer
            .sweep(
                &space,
                &net,
                &SweepPlan {
                    resume: Some(first.state()),
                    ..SweepPlan::default()
                },
            )
            .unwrap();
        assert!(resumed.completed);
        assert_eq!(resumed.processed, (0..8).collect::<Vec<u64>>());
        assert_fronts_identical(&resumed.front, &whole.front);
    }

    #[test]
    fn area_cap_screens_without_changing_survivor_reports() {
        let net = tiny_workload();
        let explorer = Explorer::new().with_threads(1);
        let open = tiny_space();
        let full = explorer.explore(&open, &net).unwrap();
        // Pick a cap that splits the space by the evaluated areas.
        let areas: Vec<f64> = {
            let mut v: Vec<f64> = open
                .designs()
                .iter()
                .map(|p| explorer.evaluate_design(p, &net).unwrap().area_mm2)
                .collect();
            v.sort_by(f64::total_cmp);
            v
        };
        let cap = (areas[3] + areas[4]) / 2.0;
        let capped_space = tiny_space().max_area_mm2(cap);
        let capped = explorer.explore(&capped_space, &net).unwrap();
        assert_eq!(capped.evaluated + capped.screened, 8);
        assert!(capped.screened > 0, "the cap must bite");
        for member in capped.front.members() {
            assert!(member.value.area_mm2 <= cap);
            let twin = full.front.members().iter().find(|m| m.id == member.id);
            if let Some(twin) = twin {
                assert_eq!(
                    member.value.energy_total.to_bits(),
                    twin.value.energy_total.to_bits()
                );
            }
        }
    }

    #[test]
    fn empty_space_is_an_error_but_empty_shard_is_not() {
        let net = tiny_workload();
        let explorer = Explorer::new();
        let err = explorer.explore(&DesignSpace::new(), &net).unwrap_err();
        assert!(matches!(err, CoreError::EmptySpace { .. }), "{err}");
        let filtered_out = tiny_space().filter(|_| false);
        let err = explorer.explore(&filtered_out, &net).unwrap_err();
        assert!(
            err.to_string().contains("removed by the space filter"),
            "{err}"
        );

        // A shard of a 1-candidate space may legitimately be empty.
        let one = DesignSpace::new().variant("base", base_macro().uncalibrated());
        let plan = SweepPlan {
            shard: Some(Shard::new(1, 2).unwrap()),
            ..SweepPlan::default()
        };
        let part = explorer.sweep(&one, &net, &plan).unwrap();
        assert!(part.front.is_empty());
        assert!(part.completed);
    }

    #[test]
    fn failing_design_aborts_the_sweep() {
        // An ADC wider than the model supports → evaluator construction
        // error. (Resolution 99 has no regression entry.)
        let space =
            DesignSpace::new().variant("bad", base_macro().uncalibrated().with_adc_bits(99));
        let err = Explorer::new().explore(&space, &tiny_workload());
        assert!(err.is_err());
    }
}
