//! The parallel design-space explorer.
//!
//! Candidate designs fan out over a scoped thread pool (work-stealing by
//! design index, the same discipline as
//! [`cimloop_system::NetworkEngine`]), all workers sharing one
//! [`EnergyTableCache`]. Table signatures differ per design (each design
//! is its own hierarchy), but the expensive hierarchy-independent value
//! statistics are keyed only by `(layer values, representation, reduction
//! width)` — so designs that differ in ADC resolution, output-combining
//! topology, or cell technology amortize the column-sum convolution across
//! each other, and layers within a design share finished tables.
//!
//! Results stream into a [`ParetoFront`] as workers finish; only the
//! non-dominated [`DesignReport`]s are retained, so sweeps of 10k+
//! designs never materialize all reports. The front is bit-identical to a
//! naive sequential sweep without the cache: cached statistics are
//! computed by the same code as fresh ones, and the front is
//! insertion-order-independent.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use cimloop_core::{CoreError, EnergyTableCache, Evaluator, Representation, RunReport};
use cimloop_macros::ArrayMacro;
use cimloop_noise::SNR_CAP_DB;
use cimloop_system::{CimSystem, StorageScenario};
use cimloop_workload::Workload;

use crate::pareto::{Objectives, ParetoFront};
use crate::space::{DesignPoint, DesignSpace};

/// What each candidate design is evaluated as.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EvalScope {
    /// The bare macro (paper Fig 2a's "macro-optimal" view).
    #[default]
    MacroOnly,
    /// The macro nested in a full [`CimSystem`] (DRAM + global buffer +
    /// NoC) under the given storage scenario — the view in which Fig 2's
    /// co-design conclusion holds.
    System(StorageScenario),
}

/// How a design's accuracy axis is scored for Pareto comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AccuracyObjective {
    /// The noise-derived expected output SNR (dB) from the statistical
    /// non-ideality subsystem: quantization, cell variation, read noise,
    /// and ADC offset, composed over the data-value distributions. The
    /// default.
    #[default]
    OutputSnr,
    /// The legacy ADC-coverage proxy (fraction of the column-sum
    /// bit-width the converter resolves). Kept behind this constructor
    /// for golden continuity with pre-noise sweeps.
    AdcCoverage,
}

/// The retained summary of one evaluated design: its configuration, the
/// objective scalars, and workload-level aggregates. Deliberately *not*
/// the full [`RunReport`] — a streaming sweep holds one of these per
/// front member, not per design.
#[derive(Debug, Clone)]
pub struct DesignReport {
    /// The evaluated design point (configuration record).
    pub point: DesignPoint,
    /// Total workload energy, joules.
    pub energy_total: f64,
    /// Energy per useful word-level MAC, joules.
    pub energy_per_mac: f64,
    /// Energy efficiency, TOPS/W.
    pub tops_per_watt: f64,
    /// Total workload latency, seconds.
    pub latency: f64,
    /// Total silicon area, mm².
    pub area_mm2: f64,
    /// The ADC-coverage accuracy proxy, in `[0, 1]`.
    pub accuracy_proxy: f64,
    /// The workload's worst-layer expected output SNR in dB from the
    /// noise subsystem (`None` when no analog readout is modeled, i.e.
    /// digital designs that resolve every bit).
    pub output_snr_db: Option<f64>,
    /// Total useful MACs of the workload.
    pub macs: u64,
}

impl DesignReport {
    /// The design's objective vector under the legacy ADC-coverage
    /// accuracy proxy (what pre-noise sweeps scored).
    ///
    /// Note this is **not** the [`Explorer::new`] default
    /// ([`AccuracyObjective::OutputSnr`]): when hand-building a baseline
    /// front to compare against an explorer's, score both sides with
    /// [`Self::objectives_for`] and one explicit objective.
    pub fn objectives(&self) -> Objectives {
        self.objectives_for(AccuracyObjective::AdcCoverage)
    }

    /// The design's objective vector with the accuracy axis scored per
    /// `accuracy`. Digital (no-ADC) designs resolve every bit, so under
    /// [`AccuracyObjective::OutputSnr`] they score the SNR cap.
    pub fn objectives_for(&self, accuracy: AccuracyObjective) -> Objectives {
        let accuracy_proxy = match accuracy {
            AccuracyObjective::AdcCoverage => self.accuracy_proxy,
            AccuracyObjective::OutputSnr => self.output_snr_db.unwrap_or(SNR_CAP_DB),
        };
        Objectives {
            energy_per_mac: self.energy_per_mac,
            tops_per_watt: self.tops_per_watt,
            area_mm2: self.area_mm2,
            accuracy_proxy,
        }
    }
}

/// The accuracy proxy of a macro configuration: the fraction of the full
/// column-sum bit-width the output converter resolves.
///
/// A column sum over `rows` products of `dac_bits`-bit inputs and
/// `cell_bits`-bit weights spans `dac_bits + cell_bits + ⌈log₂ rows⌉`
/// bits; an ADC of fewer bits quantizes it and loses output fidelity
/// (paper §III-D3). Digital readout resolves every bit. This is a
/// *proxy* — a monotone stand-in for simulated task accuracy, not a
/// simulated accuracy itself.
pub fn accuracy_proxy(m: &ArrayMacro) -> f64 {
    let no_adc = m
        .hierarchy()
        .map(|h| h.component("adc").is_none())
        .unwrap_or(false);
    if no_adc {
        return 1.0;
    }
    // ⌈log₂ rows⌉ extra bits to hold a `rows`-way sum without overflow.
    let sum_carry_bits = 64 - m.rows().max(1).saturating_sub(1).leading_zeros();
    let sum_bits = m.dac_bits() + m.cell_bits() + sum_carry_bits;
    f64::from(m.adc_bits().min(sum_bits)) / f64::from(sum_bits)
}

/// The result of one exploration.
#[derive(Debug)]
pub struct Exploration {
    /// The non-dominated designs, ascending by design id.
    pub front: ParetoFront<DesignReport>,
    /// How many designs were evaluated (after filtering).
    pub evaluated: usize,
}

/// A parallel, cache-amortized design-space explorer.
#[derive(Debug, Clone)]
pub struct Explorer {
    scope: EvalScope,
    threads: usize,
    accuracy: AccuracyObjective,
    cache: Arc<EnergyTableCache>,
}

impl Default for Explorer {
    fn default() -> Self {
        Self::new()
    }
}

impl Explorer {
    /// A macro-scope explorer using every available core, a fresh cache,
    /// and the noise-derived [`AccuracyObjective::OutputSnr`] accuracy
    /// axis.
    pub fn new() -> Self {
        Explorer {
            scope: EvalScope::default(),
            threads: 0,
            accuracy: AccuracyObjective::default(),
            cache: Arc::new(EnergyTableCache::new()),
        }
    }

    /// An explorer scoring accuracy with the legacy ADC-coverage proxy —
    /// the pre-noise behaviour, kept for golden continuity (the committed
    /// `dse_sweep` front was produced under this objective).
    pub fn with_adc_coverage_accuracy() -> Self {
        Self::new().with_accuracy(AccuracyObjective::AdcCoverage)
    }

    /// Sets the evaluation scope.
    pub fn with_scope(mut self, scope: EvalScope) -> Self {
        self.scope = scope;
        self
    }

    /// Sets the accuracy objective of the Pareto front's accuracy axis.
    pub fn with_accuracy(mut self, accuracy: AccuracyObjective) -> Self {
        self.accuracy = accuracy;
        self
    }

    /// The configured accuracy objective.
    pub fn accuracy(&self) -> AccuracyObjective {
        self.accuracy
    }

    /// Sets the worker-thread count. `0` (the default) resolves to
    /// [`std::thread::available_parallelism`]; `1` evaluates designs
    /// sequentially on the calling thread (still cached).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Shares an existing cache (e.g. between a macro-scope and a
    /// system-scope exploration of the same grid, which have equal
    /// reduction widths and so share all value statistics).
    pub fn with_cache(mut self, cache: Arc<EnergyTableCache>) -> Self {
        self.cache = cache;
        self
    }

    /// The shared cache (for hit/miss introspection).
    pub fn cache(&self) -> &EnergyTableCache {
        &self.cache
    }

    /// Explores `space` on `workload`, streaming results into a Pareto
    /// front.
    ///
    /// # Errors
    ///
    /// Propagates evaluator and evaluation errors; on the first failure
    /// the sweep aborts (workers stop pulling designs) and the error of
    /// the earliest claimed failing design is returned.
    pub fn explore(
        &self,
        space: &DesignSpace,
        workload: &Workload,
    ) -> Result<Exploration, CoreError> {
        self.explore_with(space, workload, |_| {})
    }

    /// Like [`Self::explore`], additionally passing every finished
    /// [`DesignReport`] to `sink` (called from worker threads, in
    /// completion order — not id order).
    ///
    /// # Errors
    ///
    /// See [`Self::explore`].
    pub fn explore_with(
        &self,
        space: &DesignSpace,
        workload: &Workload,
        sink: impl Fn(&DesignReport) + Sync,
    ) -> Result<Exploration, CoreError> {
        let designs = space.designs();
        let threads = self.resolved_threads(designs.len());
        let front = Mutex::new(ParetoFront::new());

        if threads <= 1 {
            for point in &designs {
                let report = self.evaluate_design(point, workload)?;
                sink(&report);
                front.lock().expect("front lock poisoned").insert(
                    point.id(),
                    report.objectives_for(self.accuracy),
                    report,
                );
            }
        } else {
            let next = AtomicUsize::new(0);
            let failed = AtomicBool::new(false);
            let mut failures: Vec<(u64, CoreError)> = std::thread::scope(|scope| {
                let mut handles = Vec::with_capacity(threads);
                for _ in 0..threads {
                    let next = &next;
                    let failed = &failed;
                    let designs = &designs;
                    let front = &front;
                    let sink = &sink;
                    let this = self;
                    handles.push(scope.spawn(move || {
                        let mut errors = Vec::new();
                        while !failed.load(Ordering::Relaxed) {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            let Some(point) = designs.get(i) else { break };
                            match this.evaluate_design(point, workload) {
                                Ok(report) => {
                                    sink(&report);
                                    front.lock().expect("front lock poisoned").insert(
                                        point.id(),
                                        report.objectives_for(this.accuracy),
                                        report,
                                    );
                                }
                                Err(e) => {
                                    failed.store(true, Ordering::Relaxed);
                                    errors.push((point.id(), e));
                                }
                            }
                        }
                        errors
                    }));
                }
                handles
                    .into_iter()
                    .flat_map(|h| h.join().expect("explorer worker panicked"))
                    .collect()
            });
            failures.sort_by_key(|&(id, _)| id);
            if let Some((_, error)) = failures.into_iter().next() {
                return Err(error);
            }
        }

        Ok(Exploration {
            front: front.into_inner().expect("front lock poisoned"),
            evaluated: designs.len(),
        })
    }

    /// Evaluates one design through the shared cache.
    ///
    /// # Errors
    ///
    /// Propagates evaluator construction and evaluation errors.
    pub fn evaluate_design(
        &self,
        point: &DesignPoint,
        workload: &Workload,
    ) -> Result<DesignReport, CoreError> {
        let (evaluator, rep) = self.evaluator_for(point)?;
        let run = evaluator.evaluate_cached(workload, &rep, &self.cache)?;
        Ok(summarize(point, &evaluator, &run))
    }

    /// Builds the scoped evaluator and representation for one design.
    fn evaluator_for(&self, point: &DesignPoint) -> Result<(Evaluator, Representation), CoreError> {
        match self.scope {
            EvalScope::MacroOnly => Ok((
                point.cim_macro().evaluator()?,
                point.cim_macro().representation(),
            )),
            EvalScope::System(scenario) => {
                let system = CimSystem::new(point.cim_macro().clone()).with_scenario(scenario);
                Ok((system.evaluator()?, system.representation()))
            }
        }
    }

    /// The resolved worker count for `designs` candidates.
    fn resolved_threads(&self, designs: usize) -> usize {
        let configured = if self.threads == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            self.threads
        };
        configured.clamp(1, designs.max(1))
    }
}

/// Folds a finished run into the retained per-design summary. Shared by
/// the explorer and by naive sweeps that want comparable reports.
pub fn summarize(point: &DesignPoint, evaluator: &Evaluator, run: &RunReport) -> DesignReport {
    DesignReport {
        point: point.clone(),
        energy_total: run.energy_total(),
        energy_per_mac: run.energy_per_mac(),
        tops_per_watt: run.tops_per_watt(),
        latency: run.latency_total(),
        area_mm2: evaluator.area().total_mm2(),
        accuracy_proxy: accuracy_proxy(point.cim_macro()),
        output_snr_db: run.output_snr_db(),
        macs: run.macs_total(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::DesignSpace;
    use cimloop_macros::base_macro;
    use cimloop_workload::{Layer, LayerKind, Shape};

    fn tiny_workload() -> Workload {
        Workload::new(
            "tiny",
            vec![
                Layer::new("a", LayerKind::Linear, Shape::linear(2, 24, 24).unwrap()),
                Layer::new("b", LayerKind::Linear, Shape::linear(2, 48, 24).unwrap())
                    .with_input_bits(4),
            ],
        )
        .unwrap()
    }

    fn tiny_space() -> DesignSpace {
        DesignSpace::new()
            .variant("base", base_macro().uncalibrated())
            .variant("adc4", base_macro().uncalibrated().with_adc_bits(4))
            .square_arrays([16, 32])
            .dac_bits([1, 2])
    }

    #[test]
    fn explorer_matches_naive_sequential_sweep() {
        let space = tiny_space();
        let net = tiny_workload();
        // Both objectives must match a naive uncached sweep bit-for-bit.
        for accuracy in [AccuracyObjective::AdcCoverage, AccuracyObjective::OutputSnr] {
            let explorer = Explorer::new().with_accuracy(accuracy).with_threads(2);
            let exploration = explorer.explore(&space, &net).unwrap();
            assert_eq!(exploration.evaluated, 8);

            // Naive: fresh evaluator per design, no cache.
            let mut naive = ParetoFront::new();
            for point in space.designs() {
                let evaluator = point.cim_macro().evaluator().unwrap();
                let run = evaluator
                    .evaluate(&net, &point.cim_macro().representation())
                    .unwrap();
                let report = summarize(&point, &evaluator, &run);
                naive.insert(point.id(), report.objectives_for(accuracy), report);
            }

            assert_eq!(exploration.front.len(), naive.len());
            for (a, b) in exploration.front.members().iter().zip(naive.members()) {
                assert_eq!(a.id, b.id);
                assert_eq!(a.objectives, b.objectives);
                assert_eq!(a.value.energy_total, b.value.energy_total);
            }
        }
    }

    #[test]
    fn legacy_constructor_scores_adc_coverage() {
        let explorer = Explorer::with_adc_coverage_accuracy();
        assert_eq!(explorer.accuracy(), AccuracyObjective::AdcCoverage);
        assert_eq!(Explorer::new().accuracy(), AccuracyObjective::OutputSnr);
    }

    #[test]
    fn snr_objective_separates_noisy_designs_where_the_proxy_cannot() {
        // Two designs identical except for cell variation: the ADC
        // coverage proxy scores them equally, the SNR objective does not.
        let quiet = base_macro().uncalibrated();
        let noisy = base_macro()
            .uncalibrated()
            .with_noise(cimloop_noise::NoiseSpec::new().with_cell_variation(0.2));
        let space = DesignSpace::new()
            .variant("quiet", quiet)
            .variant("noisy", noisy);
        let net = tiny_workload();
        let explorer = Explorer::new().with_threads(1);
        let mut reports: Vec<DesignReport> = Vec::new();
        for point in space.designs() {
            reports.push(explorer.evaluate_design(&point, &net).unwrap());
        }
        assert_eq!(reports[0].accuracy_proxy, reports[1].accuracy_proxy);
        let quiet_snr = reports[0].output_snr_db.unwrap();
        let noisy_snr = reports[1].output_snr_db.unwrap();
        assert!(noisy_snr < quiet_snr, "{noisy_snr} vs {quiet_snr}");
        let o_quiet = reports[0].objectives_for(AccuracyObjective::OutputSnr);
        let o_noisy = reports[1].objectives_for(AccuracyObjective::OutputSnr);
        assert!(o_quiet.accuracy_proxy > o_noisy.accuracy_proxy);
    }

    #[test]
    fn stats_are_shared_across_designs() {
        let space = tiny_space();
        let net = tiny_workload();
        let explorer = Explorer::new().with_threads(1);
        let exploration = explorer.explore(&space, &net).unwrap();
        assert_eq!(exploration.evaluated, 8);
        // 8 designs × 2 layers = 16 table computations (every design is a
        // distinct hierarchy) …
        assert_eq!(explorer.cache().misses(), 16);
        // … but the ADC variant shares all value statistics with the base
        // variant: 2 sizes × 2 dacs × 2 layer signatures = 8 distinct.
        assert_eq!(explorer.cache().stats_len(), 8);
        assert_eq!(explorer.cache().stats_misses(), 8);
        assert_eq!(explorer.cache().stats_hits(), 8);
    }

    #[test]
    fn system_scope_exceeds_macro_scope_energy() {
        let space = DesignSpace::new().variant("base", base_macro().uncalibrated());
        let net = tiny_workload();
        let macro_front = Explorer::new().explore(&space, &net).unwrap().front;
        let system_front = Explorer::new()
            .with_scope(EvalScope::System(StorageScenario::AllTensorsFromDram))
            .explore(&space, &net)
            .unwrap()
            .front;
        assert!(
            system_front.members()[0].value.energy_total
                > macro_front.members()[0].value.energy_total
        );
    }

    #[test]
    fn accuracy_proxy_tracks_adc_coverage() {
        let m = base_macro().uncalibrated().with_array(256, 256);
        // Full sum width: 1 (dac) + 2 (cell) + 8 (log2 rows) = 11 bits.
        let full = m.clone().with_adc_bits(11);
        let half = m.clone().with_adc_bits(5);
        assert!((accuracy_proxy(&full) - 1.0).abs() < 1e-12);
        assert!(accuracy_proxy(&half) < accuracy_proxy(&full));
        assert!((accuracy_proxy(&half) - 5.0 / 11.0).abs() < 1e-12);
        // Digital readout resolves every bit.
        let digital = cimloop_macros::digital_cim().uncalibrated();
        assert!((accuracy_proxy(&digital) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn failing_design_aborts_the_sweep() {
        // An ADC wider than the model supports → evaluator construction
        // error. (Resolution 99 has no regression entry.)
        let space =
            DesignSpace::new().variant("bad", base_macro().uncalibrated().with_adc_bits(99));
        let err = Explorer::new().explore(&space, &tiny_workload());
        assert!(err.is_err());
    }
}
