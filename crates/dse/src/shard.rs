//! Shard descriptors for fanned-out sweeps.
//!
//! A sweep over a filtered candidate list `c_0..c_m` splits into `n`
//! shards by position: candidate `c_i` belongs to shard `i % n`. The
//! striped (round-robin) partition keeps per-shard work balanced even
//! when evaluation cost trends along the grid (larger arrays later in
//! an axis), and because the [`crate::ParetoFront`] is
//! insertion-order-independent, merging the per-shard fronts
//! reproduces the single-process front byte-for-byte.

use std::error::Error;
use std::fmt;
use std::str::FromStr;

/// One shard of an `n`-way sweep: shard `index` of `count`.
///
/// Parses from the CLI form `i/n` (zero-based):
///
/// ```
/// use cimloop_dse::Shard;
///
/// let shard: Shard = "2/4".parse().unwrap();
/// assert_eq!(shard.index(), 2);
/// assert_eq!(shard.count(), 4);
/// assert_eq!(shard.to_string(), "2/4");
/// assert!("4/4".parse::<Shard>().is_err());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Shard {
    index: usize,
    count: usize,
}

impl Shard {
    /// Shard `index` of `count`, zero-based.
    ///
    /// # Errors
    ///
    /// Rejects `count == 0` and `index >= count`.
    pub fn new(index: usize, count: usize) -> Result<Self, ShardError> {
        if count == 0 {
            return Err(ShardError {
                message: "shard count must be at least 1".to_owned(),
            });
        }
        if index >= count {
            return Err(ShardError {
                message: format!("shard index {index} out of range for {count} shard(s)"),
            });
        }
        Ok(Shard { index, count })
    }

    /// This shard's zero-based index.
    pub fn index(&self) -> usize {
        self.index
    }

    /// The total number of shards.
    pub fn count(&self) -> usize {
        self.count
    }
}

impl fmt::Display for Shard {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.index, self.count)
    }
}

impl FromStr for Shard {
    type Err = ShardError;

    fn from_str(s: &str) -> Result<Self, ShardError> {
        let malformed = || ShardError {
            message: format!("malformed shard `{s}` (expected `i/n`, e.g. `0/4`)"),
        };
        let (index, count) = s.split_once('/').ok_or_else(malformed)?;
        let index: usize = index.trim().parse().map_err(|_| malformed())?;
        let count: usize = count.trim().parse().map_err(|_| malformed())?;
        Shard::new(index, count)
    }
}

/// A shard descriptor that is malformed or out of range.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardError {
    message: String,
}

impl fmt::Display for ShardError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl Error for ShardError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_and_round_trips() {
        let shard: Shard = "0/1".parse().unwrap();
        assert_eq!(shard, Shard::new(0, 1).unwrap());
        assert_eq!("3/8".parse::<Shard>().unwrap().to_string(), "3/8");
    }

    #[test]
    fn rejects_malformed_and_out_of_range() {
        for bad in ["", "3", "a/b", "1/", "/4", "-1/4", "4/4", "0/0"] {
            assert!(bad.parse::<Shard>().is_err(), "{bad} should not parse");
        }
    }
}
