//! Multi-objective Pareto front with streaming insertion and deterministic
//! tie-breaking.
//!
//! The front is *order-independent*: inserting the same set of candidates
//! in any order yields the same members. That is what lets a parallel
//! explorer insert results as workers finish while still matching a naive
//! sequential sweep bit-for-bit (property-tested in
//! `tests/proptest_pareto.rs`).

/// The objective vector of one candidate design (paper Fig 2's axes plus
/// area and an accuracy proxy).
///
/// `energy_per_mac` and `area_mm2` are minimized; `tops_per_watt` and
/// `accuracy_proxy` are maximized. Note that `tops_per_watt` is an exact
/// monotone transform of `energy_per_mac` (2 / (energy·10¹²)), so carrying
/// both never changes a dominance verdict — both are kept because both are
/// the units the paper reports.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Objectives {
    /// Energy per useful word-level MAC, joules (minimize).
    pub energy_per_mac: f64,
    /// Energy efficiency, TOPS/W (maximize).
    pub tops_per_watt: f64,
    /// Total silicon area, mm² (minimize).
    pub area_mm2: f64,
    /// Fraction of the full column-sum width the output converter
    /// captures, in `[0, 1]` (maximize).
    pub accuracy_proxy: f64,
}

impl Objectives {
    /// The vector with every axis oriented as "smaller is better".
    fn minimized(&self) -> [f64; 4] {
        [
            self.energy_per_mac,
            -self.tops_per_watt,
            self.area_mm2,
            -self.accuracy_proxy,
        ]
    }

    /// Whether every axis is finite (required for insertion).
    pub fn is_finite(&self) -> bool {
        self.minimized().iter().all(|v| v.is_finite())
    }

    /// Weak dominance: `self` is no worse than `other` on every axis.
    /// Equal vectors dominate each other; strict dominance additionally
    /// requires one strictly better axis.
    pub fn dominates(&self, other: &Objectives) -> bool {
        self.minimized()
            .iter()
            .zip(other.minimized())
            .all(|(a, b)| a.total_cmp(&b).is_le())
    }

    /// Strict dominance: weakly dominates with at least one strictly
    /// better axis.
    pub fn strictly_dominates(&self, other: &Objectives) -> bool {
        self.dominates(other) && self.minimized() != other.minimized()
    }
}

/// One non-dominated candidate retained by the front.
#[derive(Debug, Clone)]
pub struct FrontMember<T> {
    /// The candidate's stable identity (its index in the design grid);
    /// also the tie-breaker between objective-identical candidates.
    pub id: u64,
    /// The candidate's objective vector.
    pub objectives: Objectives,
    /// The caller's payload (typically a design report).
    pub value: T,
}

/// A streaming Pareto front: holds only the non-dominated candidates seen
/// so far, so a sweep of 10k+ designs never materializes all reports.
///
/// Deterministic by construction: the retained set is exactly the
/// strictly-non-dominated candidates, with each class of objective-equal
/// candidates represented by its smallest `id`. Both rules are insertion
/// -order-independent, and members are kept sorted by `id`.
#[derive(Debug, Clone, Default)]
pub struct ParetoFront<T> {
    members: Vec<FrontMember<T>>,
}

impl<T> ParetoFront<T> {
    /// An empty front.
    pub fn new() -> Self {
        ParetoFront {
            members: Vec::new(),
        }
    }

    /// Offers a candidate to the front. Returns `true` if it was retained
    /// (it may still be evicted by a later, dominating candidate).
    ///
    /// # Example
    ///
    /// ```
    /// use cimloop_dse::{Objectives, ParetoFront};
    ///
    /// let obj = |energy: f64, accuracy: f64| Objectives {
    ///     energy_per_mac: energy,
    ///     tops_per_watt: 2.0 / (energy * 1e12),
    ///     area_mm2: 1.0,
    ///     accuracy_proxy: accuracy,
    /// };
    /// let mut front = ParetoFront::new();
    /// assert!(front.insert(0, obj(2e-12, 0.5), "baseline"));
    /// // Cheaper *and* more accurate: evicts the baseline.
    /// assert!(front.insert(1, obj(1e-12, 0.8), "better"));
    /// // Strictly worse than the survivor: rejected.
    /// assert!(!front.insert(2, obj(3e-12, 0.1), "worse"));
    /// // Incomparable trade-off (more energy, more accuracy): retained.
    /// assert!(front.insert(3, obj(2e-12, 0.9), "accurate"));
    /// assert_eq!(front.len(), 2);
    /// ```
    ///
    /// # Panics
    ///
    /// In debug builds, panics on non-finite objectives: a NaN axis would
    /// make dominance non-transitive and the front order-dependent.
    pub fn insert(&mut self, id: u64, objectives: Objectives, value: T) -> bool {
        debug_assert!(
            objectives.is_finite(),
            "non-finite objectives {objectives:?} for design {id}"
        );
        for member in &self.members {
            if member.objectives.strictly_dominates(&objectives) {
                return false;
            }
            // Objective-equal twins: the smallest id represents the class.
            if member.objectives.dominates(&objectives)
                && objectives.dominates(&member.objectives)
                && member.id <= id
            {
                return false;
            }
        }
        self.members.retain(|member| {
            let strictly_worse = objectives.strictly_dominates(&member.objectives);
            let twin_with_larger_id = objectives.dominates(&member.objectives)
                && member.objectives.dominates(&objectives)
                && id < member.id;
            !(strictly_worse || twin_with_larger_id)
        });
        let at = self.members.partition_point(|member| member.id < id);
        self.members.insert(
            at,
            FrontMember {
                id,
                objectives,
                value,
            },
        );
        true
    }

    /// The non-dominated members, ascending by `id`.
    pub fn members(&self) -> &[FrontMember<T>] {
        &self.members
    }

    /// Consumes the front, yielding its members ascending by `id`.
    pub fn into_members(self) -> Vec<FrontMember<T>> {
        self.members
    }

    /// Number of members on the front.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the front is empty.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Merges another front into this one (used to combine per-worker
    /// fronts; equivalent to inserting every member individually).
    pub fn merge(&mut self, other: ParetoFront<T>) {
        for member in other.members {
            self.insert(member.id, member.objectives, member.value);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obj(e: f64, area: f64, acc: f64) -> Objectives {
        Objectives {
            energy_per_mac: e,
            tops_per_watt: 2.0 / (e * 1e12),
            area_mm2: area,
            accuracy_proxy: acc,
        }
    }

    #[test]
    fn dominated_candidates_are_rejected_and_evicted() {
        let mut front = ParetoFront::new();
        assert!(front.insert(0, obj(2.0, 2.0, 0.5), "a"));
        // Strictly better on every axis: evicts the first.
        assert!(front.insert(1, obj(1.0, 1.0, 0.8), "b"));
        assert_eq!(front.len(), 1);
        assert_eq!(front.members()[0].id, 1);
        // Strictly worse: rejected.
        assert!(!front.insert(2, obj(3.0, 3.0, 0.1), "c"));
        // Incomparable (worse energy, better accuracy): retained.
        assert!(front.insert(3, obj(2.0, 1.0, 0.9), "d"));
        assert_eq!(front.len(), 2);
    }

    #[test]
    fn equal_objectives_keep_smallest_id() {
        let v = obj(1.0, 1.0, 0.5);
        let mut a = ParetoFront::new();
        a.insert(7, v, ());
        a.insert(3, v, ());
        let mut b = ParetoFront::new();
        b.insert(3, v, ());
        b.insert(7, v, ());
        assert_eq!(a.len(), 1);
        assert_eq!(a.members()[0].id, 3);
        assert_eq!(b.members()[0].id, 3);
    }

    #[test]
    fn members_sorted_by_id() {
        let mut front = ParetoFront::new();
        front.insert(5, obj(1.0, 3.0, 0.5), ());
        front.insert(1, obj(3.0, 1.0, 0.5), ());
        front.insert(3, obj(2.0, 2.0, 0.5), ());
        let ids: Vec<u64> = front.members().iter().map(|m| m.id).collect();
        assert_eq!(ids, vec![1, 3, 5]);
    }

    #[test]
    fn merge_equals_individual_insertion() {
        let mut a = ParetoFront::new();
        a.insert(0, obj(1.0, 3.0, 0.5), ());
        let mut b = ParetoFront::new();
        b.insert(1, obj(3.0, 1.0, 0.5), ());
        b.insert(2, obj(4.0, 4.0, 0.1), ()); // strictly dominated by id 1
        a.merge(b);
        let ids: Vec<u64> = a.members().iter().map(|m| m.id).collect();
        assert_eq!(ids, vec![0, 1]);
    }
}
