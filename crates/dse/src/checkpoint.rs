//! Sweep checkpoints: resumable progress as a reflected scenario
//! document.
//!
//! A [`Checkpoint`] persists a sweep's [`SweepState`] — the processed
//! candidate ids and the Pareto front accumulated so far — together
//! with a structural fingerprint of the [`DesignSpace`] and the
//! accuracy objective, so a resume against a *different* space or
//! objective is rejected instead of silently misnumbering designs.
//!
//! The on-disk form is an ordinary [`ScenarioDoc`] (`!Scenario` +
//! `!Checkpoint` + one `!Member` per front design), which buys the
//! whole spec toolchain for free: yamlite and JSON codecs
//! (`.json` paths round-trip through [`ScenarioDoc::to_json`]),
//! `cimloop convert`, and `cimloop diff` for inspecting two
//! checkpoints structurally. Every floating-point objective is stored
//! as its IEEE-754 bit pattern (a `u64`), so a resumed front is
//! byte-identical to the one that was saved — no decimal round-trip.

use std::fmt;
use std::path::Path;

use cimloop_spec::{ScenarioDoc, Section, SpecError, Value};

use crate::explorer::{AccuracyObjective, DesignReport, Exploration, SweepState};
use crate::pareto::ParetoFront;
use crate::space::DesignSpace;

/// The checkpoint format version this build reads and writes.
const VERSION: u64 = 1;

/// A persisted sweep state, decoupled from any live [`DesignSpace`]
/// (front members are stored by design id and re-materialized through
/// [`DesignSpace::point_at`] on resume).
#[derive(Debug, Clone)]
pub struct Checkpoint {
    name: String,
    space_fingerprint: u64,
    accuracy: AccuracyObjective,
    processed: Vec<u64>,
    members: Vec<StoredReport>,
}

/// One front member, flattened to id + objective scalars (the design
/// configuration itself is reproducible from the space).
#[derive(Debug, Clone)]
struct StoredReport {
    id: u64,
    label: String,
    energy_total: f64,
    energy_per_mac: f64,
    tops_per_watt: f64,
    latency: f64,
    area_mm2: f64,
    accuracy_proxy: f64,
    output_snr_db: Option<f64>,
    task_accuracy: Option<f64>,
    macs: u64,
}

impl Checkpoint {
    /// Captures an exploration's resumable progress against the space
    /// it ran on. `name` labels the checkpoint's `!Scenario` section
    /// (conventionally the sweep's scenario name).
    pub fn capture(
        name: impl Into<String>,
        space: &DesignSpace,
        accuracy: AccuracyObjective,
        exploration: &Exploration,
    ) -> Self {
        let members = exploration
            .front
            .members()
            .iter()
            .map(|m| StoredReport {
                id: m.id,
                label: m.value.point.label(),
                energy_total: m.value.energy_total,
                energy_per_mac: m.value.energy_per_mac,
                tops_per_watt: m.value.tops_per_watt,
                latency: m.value.latency,
                area_mm2: m.value.area_mm2,
                accuracy_proxy: m.value.accuracy_proxy,
                output_snr_db: m.value.output_snr_db,
                task_accuracy: m.value.task_accuracy,
                macs: m.value.macs,
            })
            .collect();
        Checkpoint {
            name: name.into(),
            space_fingerprint: space.fingerprint(),
            accuracy,
            processed: exploration.processed.clone(),
            members,
        }
    }

    /// The checkpoint's scenario name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The fingerprint of the space the checkpoint was captured on.
    pub fn space_fingerprint(&self) -> u64 {
        self.space_fingerprint
    }

    /// The accuracy objective the front was scored under.
    pub fn accuracy(&self) -> AccuracyObjective {
        self.accuracy
    }

    /// Ids of every candidate the checkpointed run had processed.
    pub fn processed(&self) -> &[u64] {
        &self.processed
    }

    /// How many front members the checkpoint carries.
    pub fn front_len(&self) -> usize {
        self.members.len()
    }

    /// Re-materializes the checkpoint into resumable [`SweepState`]
    /// against the (structurally identical) space it was captured on.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Mismatch`] when `space`'s fingerprint or
    /// `accuracy` differ from the checkpoint's, or a stored member id
    /// falls outside the space's grid.
    pub fn resume_state(
        &self,
        space: &DesignSpace,
        accuracy: AccuracyObjective,
    ) -> Result<SweepState, CheckpointError> {
        if space.fingerprint() != self.space_fingerprint {
            return Err(CheckpointError::Mismatch {
                message: format!(
                    "checkpoint `{}` was captured on a different design space \
                     (fingerprint {:#018x}, this space is {:#018x})",
                    self.name,
                    self.space_fingerprint,
                    space.fingerprint()
                ),
            });
        }
        if accuracy != self.accuracy {
            return Err(CheckpointError::Mismatch {
                message: format!(
                    "checkpoint `{}` was scored under accuracy `{}`, not `{}`",
                    self.name,
                    self.accuracy.as_str(),
                    accuracy.as_str()
                ),
            });
        }
        let mut front = ParetoFront::new();
        for stored in &self.members {
            let point = space
                .point_at(stored.id)
                .ok_or_else(|| CheckpointError::Mismatch {
                    message: format!(
                        "checkpoint member id {} is outside the space's {}-cell grid",
                        stored.id,
                        space.grid_len()
                    ),
                })?;
            let report = DesignReport {
                point,
                energy_total: stored.energy_total,
                energy_per_mac: stored.energy_per_mac,
                tops_per_watt: stored.tops_per_watt,
                latency: stored.latency,
                area_mm2: stored.area_mm2,
                accuracy_proxy: stored.accuracy_proxy,
                output_snr_db: stored.output_snr_db,
                task_accuracy: stored.task_accuracy,
                macs: stored.macs,
            };
            front.insert(stored.id, report.objectives_for(accuracy), report);
        }
        Ok(SweepState {
            front,
            processed: self.processed.clone(),
        })
    }

    /// Serializes the checkpoint as a reflected [`ScenarioDoc`].
    pub fn to_doc(&self) -> ScenarioDoc {
        let mut root = Value::map();
        let mut scenario = Value::map();
        scenario.insert("name", Value::scalar(&self.name));
        scenario.insert("experiment", Value::scalar("checkpoint"));
        root.insert("scenario", scenario);

        let mut sections = Vec::new();
        let mut header = Value::map();
        header.insert("version", Value::scalar(&VERSION.to_string()));
        header.insert("space", Value::scalar(&self.space_fingerprint.to_string()));
        header.insert("accuracy", Value::scalar(self.accuracy.as_str()));
        header.insert(
            "processed",
            Value::List(
                self.processed
                    .iter()
                    .map(|id| Value::scalar(&id.to_string()))
                    .collect(),
            ),
        );
        sections.push(section_value("Checkpoint", header));

        for stored in &self.members {
            let mut member = Value::map();
            member.insert("id", Value::scalar(&stored.id.to_string()));
            member.insert("label", Value::scalar(&stored.label));
            for (key, value) in [
                ("energy_total", stored.energy_total),
                ("energy_per_mac", stored.energy_per_mac),
                ("tops_per_watt", stored.tops_per_watt),
                ("latency", stored.latency),
                ("area_mm2", stored.area_mm2),
                ("accuracy_proxy", stored.accuracy_proxy),
            ] {
                member.insert(key, Value::scalar(&value.to_bits().to_string()));
            }
            if let Some(snr) = stored.output_snr_db {
                member.insert("output_snr_db", Value::scalar(&snr.to_bits().to_string()));
            }
            if let Some(acc) = stored.task_accuracy {
                member.insert("task_accuracy", Value::scalar(&acc.to_bits().to_string()));
            }
            member.insert("macs", Value::scalar(&stored.macs.to_string()));
            sections.push(section_value("Member", member));
        }

        root.insert("sections", Value::List(sections));
        ScenarioDoc::from_value(&root)
            .expect("checkpoint value tree is well-formed by construction")
    }

    /// Decodes a checkpoint from its document form.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Mismatch`] when the document is not a
    /// checkpoint (wrong experiment, missing `!Checkpoint` section,
    /// unknown version) and [`CheckpointError::Spec`] on malformed
    /// fields.
    pub fn from_doc(doc: &ScenarioDoc) -> Result<Self, CheckpointError> {
        if doc.experiment() != "checkpoint" {
            return Err(CheckpointError::Mismatch {
                message: format!(
                    "document's experiment is `{}`, not `checkpoint`",
                    doc.experiment()
                ),
            });
        }
        let name = doc.scenario().str_or("name", "checkpoint").to_owned();
        let header = doc
            .section("Checkpoint")
            .ok_or_else(|| CheckpointError::Mismatch {
                message: "document has no !Checkpoint section".to_owned(),
            })?;
        let version = req_u64(header, "version")?;
        if version != VERSION {
            return Err(CheckpointError::Mismatch {
                message: format!(
                    "unsupported checkpoint version {version} (this build reads {VERSION})"
                ),
            });
        }
        let space_fingerprint = req_u64(header, "space")?;
        let accuracy_name = header
            .str("accuracy")
            .ok_or_else(|| missing(header, "accuracy"))?;
        let accuracy =
            AccuracyObjective::parse(accuracy_name).ok_or_else(|| CheckpointError::Mismatch {
                message: format!("unknown accuracy objective `{accuracy_name}`"),
            })?;
        let processed = header
            .u64_list("processed")?
            .ok_or_else(|| missing(header, "processed"))?;

        let mut members = Vec::new();
        for section in doc.sections("Member") {
            let output_snr_db = section.u64("output_snr_db")?.map(f64::from_bits);
            let task_accuracy = section.u64("task_accuracy")?.map(f64::from_bits);
            members.push(StoredReport {
                id: req_u64(section, "id")?,
                label: section.str_or("label", "").to_owned(),
                energy_total: req_bits(section, "energy_total")?,
                energy_per_mac: req_bits(section, "energy_per_mac")?,
                tops_per_watt: req_bits(section, "tops_per_watt")?,
                latency: req_bits(section, "latency")?,
                area_mm2: req_bits(section, "area_mm2")?,
                accuracy_proxy: req_bits(section, "accuracy_proxy")?,
                output_snr_db,
                task_accuracy,
                macs: req_u64(section, "macs")?,
            });
        }
        Ok(Checkpoint {
            name,
            space_fingerprint,
            accuracy,
            processed,
            members,
        })
    }

    /// Writes the checkpoint to `path` atomically (temp file + rename,
    /// so a kill mid-save never leaves a truncated checkpoint). `.json`
    /// paths get the JSON codec, everything else canonical yamlite.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), CheckpointError> {
        let path = path.as_ref();
        let doc = self.to_doc();
        let text = if is_json(path) {
            let mut json = doc.to_json();
            json.push('\n');
            json
        } else {
            doc.write()
        };
        let tmp = path.with_extension("tmp");
        std::fs::write(&tmp, text)?;
        std::fs::rename(&tmp, path)?;
        Ok(())
    }

    /// Reads a checkpoint from `path` (yamlite or JSON, sniffed from
    /// the extension with a `{` content fallback).
    ///
    /// # Errors
    ///
    /// Filesystem errors, parse errors, and the structural errors of
    /// [`Self::from_doc`].
    pub fn load(path: impl AsRef<Path>) -> Result<Self, CheckpointError> {
        let path = path.as_ref();
        let text = std::fs::read_to_string(path)?;
        let doc = if is_json(path) || text.trim_start().starts_with('{') {
            ScenarioDoc::from_json(&text)?
        } else {
            ScenarioDoc::parse(&text)?
        };
        Self::from_doc(&doc)
    }
}

fn section_value(tag: &str, entries: Value) -> Value {
    let mut m = Value::map();
    m.insert("tag", Value::scalar(tag));
    m.insert("entries", entries);
    m
}

fn is_json(path: &Path) -> bool {
    path.extension()
        .is_some_and(|ext| ext.eq_ignore_ascii_case("json"))
}

fn missing(section: &Section, key: &str) -> CheckpointError {
    CheckpointError::Mismatch {
        message: format!("!{} section is missing `{key}`", section.tag()),
    }
}

fn req_u64(section: &Section, key: &str) -> Result<u64, CheckpointError> {
    section.u64(key)?.ok_or_else(|| missing(section, key))
}

fn req_bits(section: &Section, key: &str) -> Result<f64, CheckpointError> {
    Ok(f64::from_bits(req_u64(section, key)?))
}

/// Why a checkpoint could not be saved, loaded, or resumed.
#[derive(Debug)]
pub enum CheckpointError {
    /// Filesystem failure reading or writing the checkpoint file.
    Io(std::io::Error),
    /// The file is not a structurally valid checkpoint document.
    Spec(SpecError),
    /// The checkpoint does not match the sweep being resumed (different
    /// space, accuracy objective, or format version).
    Mismatch {
        /// What differs.
        message: String,
    },
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint i/o error: {e}"),
            CheckpointError::Spec(e) => write!(f, "checkpoint parse error: {e}"),
            CheckpointError::Mismatch { message } => {
                write!(f, "checkpoint mismatch: {message}")
            }
        }
    }
}

impl std::error::Error for CheckpointError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CheckpointError::Io(e) => Some(e),
            CheckpointError::Spec(e) => Some(e),
            CheckpointError::Mismatch { .. } => None,
        }
    }
}

impl From<std::io::Error> for CheckpointError {
    fn from(e: std::io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

impl From<SpecError> for CheckpointError {
    fn from(e: SpecError) -> Self {
        CheckpointError::Spec(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explorer::{Explorer, SweepPlan};
    use cimloop_macros::base_macro;
    use cimloop_workload::{Layer, LayerKind, Shape, Workload};

    fn net() -> Workload {
        Workload::new(
            "tiny",
            vec![Layer::new(
                "a",
                LayerKind::Linear,
                Shape::linear(2, 24, 24).unwrap(),
            )],
        )
        .unwrap()
    }

    fn space() -> DesignSpace {
        DesignSpace::new()
            .variant("base", base_macro().uncalibrated())
            .square_arrays([16, 32])
            .adc_bits([4, 8])
    }

    #[test]
    fn roundtrips_through_yamlite_and_json_bit_exactly() {
        let space = space();
        let workload = net();
        let explorer = Explorer::new().with_threads(1);
        let partial = explorer
            .sweep(
                &space,
                &workload,
                &SweepPlan {
                    max_evaluations: Some(3),
                    ..SweepPlan::default()
                },
            )
            .unwrap();
        let checkpoint = Checkpoint::capture("t", &space, explorer.accuracy(), &partial);

        let dir = std::env::temp_dir().join(format!("cimloop_ckpt_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        for file in ["c.ckpt", "c.json"] {
            let path = dir.join(file);
            checkpoint.save(&path).unwrap();
            let loaded = Checkpoint::load(&path).unwrap();
            assert_eq!(loaded.processed(), checkpoint.processed());
            assert_eq!(loaded.space_fingerprint(), checkpoint.space_fingerprint());
            let state = loaded.resume_state(&space, explorer.accuracy()).unwrap();
            assert_eq!(state.front.len(), partial.front.len());
            for (a, b) in state.front.members().iter().zip(partial.front.members()) {
                assert_eq!(a.id, b.id);
                assert_eq!(a.objectives, b.objectives);
                assert_eq!(
                    a.value.energy_total.to_bits(),
                    b.value.energy_total.to_bits()
                );
                assert_eq!(a.value.point.label(), b.value.point.label());
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn resume_rejects_mismatched_space_and_accuracy() {
        let space = space();
        let workload = net();
        let explorer = Explorer::new().with_threads(1);
        let exploration = explorer.explore(&space, &workload).unwrap();
        let checkpoint = Checkpoint::capture("t", &space, explorer.accuracy(), &exploration);

        let other = DesignSpace::new()
            .variant("base", base_macro().uncalibrated())
            .square_arrays([16]);
        let err = checkpoint
            .resume_state(&other, explorer.accuracy())
            .unwrap_err();
        assert!(matches!(err, CheckpointError::Mismatch { .. }), "{err}");
        let err = checkpoint
            .resume_state(&space, AccuracyObjective::AdcCoverage)
            .unwrap_err();
        assert!(err.to_string().contains("accuracy"), "{err}");
    }

    #[test]
    fn non_checkpoint_documents_are_rejected() {
        let doc = ScenarioDoc::parse("!Scenario\nname: s\nexperiment: dse\n").unwrap();
        assert!(Checkpoint::from_doc(&doc).is_err());
        let doc = ScenarioDoc::parse("!Scenario\nname: s\nexperiment: checkpoint\n").unwrap();
        let err = Checkpoint::from_doc(&doc).unwrap_err();
        assert!(err.to_string().contains("!Checkpoint"), "{err}");
    }
}
