//! Pareto design-space exploration for CiM designs (the subsystem behind
//! the paper's Fig 2 co-design result).
//!
//! The paper's headline architectural claim is that circuit parameters
//! (DAC resolution) and architecture parameters (array size) must be
//! chosen *together*: each one's optimum moves when the other changes.
//! Answering such questions takes sweeps over many candidate designs, so
//! this crate makes the sweep a first-class object instead of a
//! hand-rolled nested loop:
//!
//! - [`DesignSpace`] — a declarative cartesian grid of parameter axes
//!   (array dims, DAC/ADC resolution, cell width) over named
//!   [`ArrayMacro`](cimloop_macros::ArrayMacro) variants, with stable
//!   design ids and user filters.
//! - [`Explorer`] — fans candidate designs over a scoped thread pool with
//!   one shared [`EnergyTableCache`](cimloop_core::EnergyTableCache):
//!   layers within a design share finished energy tables, and designs
//!   that agree on reduction width and representation share the dominant
//!   column-sum statistics across hierarchies.
//! - [`ParetoFront`] — multi-objective (energy/MAC, TOPS/W, area,
//!   accuracy proxy) with deterministic tie-breaking and streaming
//!   insertion, so huge sweeps retain only the non-dominated designs.
//!
//! Results are bit-identical to a naive sequential sweep without the
//! cache (property-tested): caching changes where numbers are computed,
//! never what they are.
//!
//! Production-scale sweeps (10⁵+ designs) add, on the same streaming
//! core and with the same bit-identity guarantee: staged evaluation
//! with fingerprint-based dominance pruning, deterministic evaluation
//! budgets with [`Checkpoint`] save/resume, and [`Shard`]ed fan-out
//! whose per-shard fronts merge back byte-identically (see
//! [`Explorer::sweep`] and [`SweepPlan`]).
//!
//! # Example
//!
//! ```
//! use cimloop_dse::{DesignSpace, Explorer};
//! use cimloop_macros::base_macro;
//! use cimloop_workload::models;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let space = DesignSpace::new()
//!     .variant("base", base_macro().frozen()?)
//!     .square_arrays([64, 128])
//!     .dac_bits([1, 2]);
//! let net = models::mvm(64, 64);
//! let exploration = Explorer::new().explore(&space, &net)?;
//! assert!(!exploration.front.is_empty());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(clippy::dbg_macro)]
#![warn(clippy::print_stderr)]
#![warn(missing_docs)]

mod checkpoint;
mod explorer;
mod pareto;
mod shard;
mod space;

pub use checkpoint::{Checkpoint, CheckpointError};
pub use explorer::{
    accuracy_proxy, summarize, task_accuracy_of, AccuracyObjective, DesignReport, EvalScope,
    Exploration, Explorer, SweepPlan, SweepState, TASK_ACCURACY_TRIALS,
};
pub use pareto::{FrontMember, Objectives, ParetoFront};
pub use shard::{Shard, ShardError};
pub use space::{DesignPoint, DesignSpace, SpaceSection};

// Noise-spec axes parameterize variation-tolerance sweeps; re-exported so
// DSE callers need no direct `cimloop-noise` dependency.
pub use cimloop_noise::NoiseSpec;
