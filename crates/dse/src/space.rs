//! Declarative design spaces: parameter axes over [`ArrayMacro`] builders.
//!
//! A [`DesignSpace`] is a cartesian grid — named macro *variants* crossed
//! with array-dimension, DAC-resolution, ADC-resolution, cell-width, and
//! non-ideality (noise-spec) axes — optionally thinned by a user filter. Every grid cell gets a
//! stable `id` (its cartesian index, assigned *before* filtering), which
//! the explorer uses for deterministic ordering and Pareto tie-breaking:
//! adding a filter never renumbers the surviving designs.

use std::sync::Arc;

use cimloop_macros::ArrayMacro;
use cimloop_noise::NoiseSpec;

cimloop_spec::reflect_section! {
    /// The reflected schema of a `!Space` scenario section: the
    /// design-space axes (variants come from `!Architecture` sections,
    /// which the caller resolves) and the stage-one screening
    /// constraints.
    pub struct SpaceSection: "Space" {
        square_arrays: [list u64], "array-size axis: each n builds an nxn array";
        dac_bits: [list u32], "DAC-resolution axis, bits";
        adc_bits: [list u32], "ADC-resolution axis, bits";
        cell_bits: [list u32], "cell bit-width axis";
        variations: [list f64], "cell-variation sigma axis, realized as a NoiseSpec axis";
        max_area_mm2: [opt f64], "stage-one screen: drop candidates whose total area exceeds this, mm2";
        min_coverage: [opt f64], "stage-one screen: drop candidates whose ADC coverage proxy falls below this, in [0, 1]";
    }
}

/// One fully-configured candidate design of a [`DesignSpace`].
#[derive(Debug, Clone)]
pub struct DesignPoint {
    id: u64,
    variant: String,
    cim_macro: ArrayMacro,
}

impl DesignPoint {
    /// The design's stable cartesian index within its space.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The name of the variant the design was derived from.
    pub fn variant(&self) -> &str {
        &self.variant
    }

    /// The configured macro.
    pub fn cim_macro(&self) -> &ArrayMacro {
        &self.cim_macro
    }

    /// Array rows.
    pub fn rows(&self) -> u64 {
        self.cim_macro.rows()
    }

    /// Array columns.
    pub fn cols(&self) -> u64 {
        self.cim_macro.cols()
    }

    /// DAC resolution, bits.
    pub fn dac_bits(&self) -> u32 {
        self.cim_macro.dac_bits()
    }

    /// ADC resolution, bits.
    pub fn adc_bits(&self) -> u32 {
        self.cim_macro.adc_bits()
    }

    /// The design's non-ideality spec (ideal unless set by the variant or
    /// a [`DesignSpace::noise_specs`] axis).
    pub fn noise(&self) -> NoiseSpec {
        self.cim_macro.noise()
    }

    /// A compact human-readable label, e.g. `c-direct/256x256/dac2/adc8`;
    /// designs with declared noise append each nonzero sigma, e.g.
    /// `.../var0.1`, `.../rn0.005`, `.../off0.25`, so specs differing in
    /// any source stay distinguishable.
    pub fn label(&self) -> String {
        let mut label = format!(
            "{}/{}x{}/dac{}/adc{}",
            self.variant,
            self.rows(),
            self.cols(),
            self.dac_bits(),
            self.adc_bits()
        );
        let noise = self.noise();
        if noise.cell_variation() > 0.0 {
            label.push_str(&format!("/var{}", noise.cell_variation()));
        }
        if noise.read_noise() > 0.0 {
            label.push_str(&format!("/rn{}", noise.read_noise()));
        }
        if noise.adc_offset() > 0.0 {
            label.push_str(&format!("/off{}", noise.adc_offset()));
        }
        label
    }
}

type Filter = Arc<dyn Fn(&DesignPoint) -> bool + Send + Sync>;

/// A declarative cartesian design space over macro builders.
///
/// Axes left empty keep the variant's own value. Iteration order (and the
/// `id` numbering) is variants-outermost:
/// `variant × array size × DAC bits × ADC bits × cell bits × noise spec`.
///
/// # Example
///
/// ```
/// use cimloop_dse::DesignSpace;
/// use cimloop_macros::base_macro;
///
/// let space = DesignSpace::new()
///     .variant("base", base_macro().uncalibrated())
///     .square_arrays([64, 128])
///     .dac_bits([1, 2]);
/// assert_eq!(space.grid_len(), 4);
/// // Ids are stable cartesian indices; `point_at` is random access.
/// let last = space.point_at(3).unwrap();
/// assert_eq!(last.rows(), 128);
/// assert_eq!(last.dac_bits(), 2);
/// assert_eq!(space.designs().len(), 4);
/// ```
#[derive(Clone, Default)]
pub struct DesignSpace {
    variants: Vec<(String, ArrayMacro)>,
    array_sizes: Vec<(u64, u64)>,
    dac_bits: Vec<u32>,
    adc_bits: Vec<u32>,
    cell_bits: Vec<u32>,
    noise_specs: Vec<NoiseSpec>,
    filter: Option<Filter>,
    max_area_mm2: Option<f64>,
    min_coverage: Option<f64>,
}

impl std::fmt::Debug for DesignSpace {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DesignSpace")
            .field(
                "variants",
                &self.variants.iter().map(|(n, _)| n).collect::<Vec<_>>(),
            )
            .field("array_sizes", &self.array_sizes)
            .field("dac_bits", &self.dac_bits)
            .field("adc_bits", &self.adc_bits)
            .field("cell_bits", &self.cell_bits)
            .field("noise_specs", &self.noise_specs)
            .field("filtered", &self.filter.is_some())
            .field("max_area_mm2", &self.max_area_mm2)
            .field("min_coverage", &self.min_coverage)
            .finish()
    }
}

impl DesignSpace {
    /// An empty space (add at least one variant before exploring).
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a named base macro. Pass frozen macros
    /// ([`ArrayMacro::frozen`]) when the variant carries a calibration
    /// anchor: deriving candidates from one frozen base is what keeps a
    /// sweep from re-anchoring every variant to the same headline number.
    pub fn variant(mut self, name: impl Into<String>, cim_macro: ArrayMacro) -> Self {
        self.variants.push((name.into(), cim_macro));
        self
    }

    /// Adds square `n`×`n` array sizes to the array-dimension axis.
    pub fn square_arrays(mut self, sizes: impl IntoIterator<Item = u64>) -> Self {
        self.array_sizes.extend(sizes.into_iter().map(|n| (n, n)));
        self
    }

    /// Adds explicit `(rows, cols)` entries to the array-dimension axis.
    pub fn array_dims(mut self, dims: impl IntoIterator<Item = (u64, u64)>) -> Self {
        self.array_sizes.extend(dims);
        self
    }

    /// Sets the DAC-resolution axis (applied via
    /// [`ArrayMacro::with_dac_resolution`], which also picks the matching
    /// converter class).
    pub fn dac_bits(mut self, bits: impl IntoIterator<Item = u32>) -> Self {
        self.dac_bits.extend(bits);
        self
    }

    /// Sets the ADC-resolution axis.
    pub fn adc_bits(mut self, bits: impl IntoIterator<Item = u32>) -> Self {
        self.adc_bits.extend(bits);
        self
    }

    /// Sets the cell-width (weight bits per device) axis.
    pub fn cell_bits(mut self, bits: impl IntoIterator<Item = u32>) -> Self {
        self.cell_bits.extend(bits);
        self
    }

    /// Sets the non-ideality axis (applied via [`ArrayMacro::with_noise`])
    /// so sweeps can explore variation tolerance: how much accuracy each
    /// design gives up as its cells and converters get noisier.
    pub fn noise_specs(mut self, specs: impl IntoIterator<Item = NoiseSpec>) -> Self {
        self.noise_specs.extend(specs);
        self
    }

    /// Parses a `!Space` scenario section's axes onto a space that already
    /// carries its variants (variants come from `!Architecture` sections,
    /// which the caller resolves — the space crate knows axes, not macro
    /// presets).
    ///
    /// Recognized keys: `square_arrays` (list of `n` for n×n arrays),
    /// `dac_bits`, `adc_bits`, `cell_bits` (bit-width lists),
    /// `variations` (cell-variation sigmas, realized as a
    /// [`NoiseSpec`] axis), and the stage-one screening constraints
    /// `max_area_mm2` / `min_coverage`.
    ///
    /// # Errors
    ///
    /// Returns [`cimloop_spec::SpecError::Parse`] on unknown keys,
    /// malformed lists, or an axis that is declared but empty (an empty
    /// axis would multiply the grid down to zero candidates — the
    /// explorer refuses to "sweep" nothing, so the mistake is reported
    /// here with the axis's own line number).
    pub fn with_section(
        self,
        section: &cimloop_spec::Section,
    ) -> Result<Self, cimloop_spec::SpecError> {
        let axes = SpaceSection::decode(section)?;
        for key in [
            "square_arrays",
            "dac_bits",
            "adc_bits",
            "cell_bits",
            "variations",
        ] {
            if let Some(entry) = section.get(key) {
                if matches!(&entry.value, cimloop_spec::SpecValue::List(v) if v.is_empty()) {
                    return Err(cimloop_spec::SpecError::Parse {
                        line: entry.line,
                        message: format!(
                            "!Space axis `{key}` is declared but empty — the design grid \
                             would yield zero candidates (drop the key to use the \
                             variant's own configuration)"
                        ),
                    });
                }
            }
        }
        let mut space = self
            .square_arrays(axes.square_arrays)
            .dac_bits(axes.dac_bits)
            .adc_bits(axes.adc_bits)
            .cell_bits(axes.cell_bits)
            .noise_specs(
                axes.variations
                    .into_iter()
                    .map(|sigma| NoiseSpec::new().with_cell_variation(sigma)),
            );
        if let Some(cap) = axes.max_area_mm2 {
            space = space.max_area_mm2(cap);
        }
        if let Some(floor) = axes.min_coverage {
            space = space.min_coverage(floor);
        }
        Ok(space)
    }

    /// Screens out candidates whose total silicon area exceeds `cap` mm².
    /// Area is a *cheap* metric (circuit models only, no value
    /// statistics), so the explorer applies this cap before any expensive
    /// evaluation — and identically on the naive path, so constrained
    /// sweeps stay bit-identical between the two.
    pub fn max_area_mm2(mut self, cap: f64) -> Self {
        self.max_area_mm2 = Some(cap);
        self
    }

    /// Screens out candidates whose ADC-coverage accuracy proxy
    /// ([`crate::accuracy_proxy`]) falls below `floor` (in `[0, 1]`).
    /// Coverage is pure arithmetic over the macro configuration, so the
    /// screen costs nothing per candidate.
    pub fn min_coverage(mut self, floor: f64) -> Self {
        self.min_coverage = Some(floor);
        self
    }

    /// The declared stage-one area cap, mm², if any.
    pub fn area_cap(&self) -> Option<f64> {
        self.max_area_mm2
    }

    /// The declared stage-one ADC-coverage floor, if any.
    pub fn coverage_floor(&self) -> Option<f64> {
        self.min_coverage
    }

    /// Thins the grid: only designs for which `keep` returns `true` are
    /// evaluated. Ids are assigned before filtering, so they are stable
    /// across filter changes.
    pub fn filter(mut self, keep: impl Fn(&DesignPoint) -> bool + Send + Sync + 'static) -> Self {
        self.filter = Some(Arc::new(keep));
        self
    }

    /// The size of the unfiltered cartesian grid.
    pub fn grid_len(&self) -> usize {
        let axis = |len: usize| len.max(1);
        self.variants.len()
            * axis(self.array_sizes.len())
            * axis(self.dac_bits.len())
            * axis(self.adc_bits.len())
            * axis(self.cell_bits.len())
            * axis(self.noise_specs.len())
    }

    /// Builds the design at cartesian index `id` without materializing the
    /// rest of the grid — random access for sharded and resumed sweeps.
    ///
    /// The index decomposes with the noise axis innermost and the variant
    /// axis outermost, matching [`DesignSpace::designs`] iteration order
    /// exactly. Returns `None` when the space has no variants or `id` is
    /// past the end of the grid. The user [`DesignSpace::filter`] is *not*
    /// consulted here — callers that honor filtering go through
    /// [`DesignSpace::admits`].
    pub fn point_at(&self, id: u64) -> Option<DesignPoint> {
        if self.variants.is_empty() || id as usize >= self.grid_len() {
            return None;
        }
        let sizes = axis(&self.array_sizes);
        let dacs = axis(&self.dac_bits);
        let adcs = axis(&self.adc_bits);
        let cells = axis(&self.cell_bits);
        let noises = axis(&self.noise_specs);

        let mut rem = id as usize;
        let noise = noises[rem % noises.len()];
        rem /= noises.len();
        let cell = cells[rem % cells.len()];
        rem /= cells.len();
        let adc = adcs[rem % adcs.len()];
        rem /= adcs.len();
        let dac = dacs[rem % dacs.len()];
        rem /= dacs.len();
        let size = sizes[rem % sizes.len()];
        rem /= sizes.len();
        let (name, base) = &self.variants[rem];

        let mut m = base.clone();
        if let Some((rows, cols)) = size {
            m = m.with_array(rows, cols);
        }
        if let Some(bits) = cell {
            let dac_now = m.dac_bits();
            m = m.with_slicing(dac_now, bits);
        }
        if let Some(bits) = dac {
            m = m.with_dac_resolution(bits);
        }
        if let Some(bits) = adc {
            m = m.with_adc_bits(bits);
        }
        if let Some(spec) = noise {
            m = m.with_noise(spec);
        }
        Some(DesignPoint {
            id,
            variant: name.clone(),
            cim_macro: m,
        })
    }

    /// Whether the user [`DesignSpace::filter`] keeps this design (`true`
    /// when no filter is set). Stage-one screening constraints are *not*
    /// applied here: they need an evaluator for the area metric, so the
    /// explorer owns them.
    pub fn admits(&self, point: &DesignPoint) -> bool {
        match &self.filter {
            Some(keep) => keep(point),
            None => true,
        }
    }

    /// Materializes the (filtered) candidate designs in id order.
    ///
    /// Design *points* are small configuration records — it is the
    /// evaluation *reports* that a streaming exploration avoids holding.
    pub fn designs(&self) -> Vec<DesignPoint> {
        (0..self.grid_len() as u64)
            .filter_map(|id| self.point_at(id))
            .filter(|point| self.admits(point))
            .collect()
    }

    /// A stable structural fingerprint of the space: variant names and
    /// configurations (noise included), every axis value list, and the
    /// stage-one constraints. Checkpoints embed this so a resume against a
    /// *different* space is rejected instead of silently misnumbering ids.
    ///
    /// The user [`DesignSpace::filter`] closure cannot be fingerprinted;
    /// two spaces differing only in their filter hash identically.
    pub fn fingerprint(&self) -> u64 {
        use std::hash::{Hash, Hasher};
        let mut hasher = std::collections::hash_map::DefaultHasher::new();
        for (name, base) in &self.variants {
            name.hash(&mut hasher);
            base.config_fingerprint(true).hash(&mut hasher);
        }
        self.array_sizes.hash(&mut hasher);
        self.dac_bits.hash(&mut hasher);
        self.adc_bits.hash(&mut hasher);
        self.cell_bits.hash(&mut hasher);
        for spec in &self.noise_specs {
            format!("{spec:?}").hash(&mut hasher);
        }
        self.max_area_mm2.map(f64::to_bits).hash(&mut hasher);
        self.min_coverage.map(f64::to_bits).hash(&mut hasher);
        hasher.finish()
    }
}

/// Empty axes keep the variant's own value, expressed as a single `None`
/// entry so the cartesian product stays uniform.
fn axis<T: Copy>(values: &[T]) -> Vec<Option<T>> {
    if values.is_empty() {
        vec![None]
    } else {
        values.iter().copied().map(Some).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cimloop_macros::base_macro;

    fn space() -> DesignSpace {
        DesignSpace::new()
            .variant("base", base_macro().uncalibrated())
            .square_arrays([64, 128])
            .dac_bits([1, 2, 4])
    }

    #[test]
    fn cartesian_grid_in_id_order() {
        let designs = space().designs();
        assert_eq!(designs.len(), 6);
        assert_eq!(space().grid_len(), 6);
        let ids: Vec<u64> = designs.iter().map(DesignPoint::id).collect();
        assert_eq!(ids, vec![0, 1, 2, 3, 4, 5]);
        assert_eq!(designs[0].rows(), 64);
        assert_eq!(designs[0].dac_bits(), 1);
        assert_eq!(designs[5].rows(), 128);
        assert_eq!(designs[5].dac_bits(), 4);
        assert_eq!(designs[3].label(), "base/128x128/dac1/adc5");
    }

    #[test]
    fn filter_keeps_ids_stable() {
        let filtered = space().filter(|d| d.dac_bits() >= 2).designs();
        assert_eq!(filtered.len(), 4);
        let ids: Vec<u64> = filtered.iter().map(DesignPoint::id).collect();
        assert_eq!(ids, vec![1, 2, 4, 5], "ids keep their unfiltered slots");
    }

    #[test]
    fn empty_axes_keep_variant_values() {
        let designs = DesignSpace::new()
            .variant("base", base_macro().uncalibrated())
            .designs();
        assert_eq!(designs.len(), 1);
        assert_eq!(designs[0].rows(), base_macro().rows());
        assert_eq!(designs[0].adc_bits(), base_macro().adc_bits());
    }

    #[test]
    fn noise_axis_parameterizes_variation_tolerance() {
        let quiet = NoiseSpec::ideal();
        let noisy = NoiseSpec::new().with_cell_variation(0.1);
        let designs = DesignSpace::new()
            .variant("base", base_macro().uncalibrated())
            .adc_bits([4, 8])
            .noise_specs([quiet, noisy])
            .designs();
        assert_eq!(designs.len(), 4);
        assert!(designs[0].noise().is_ideal());
        assert_eq!(designs[1].noise(), noisy);
        assert_eq!(designs[1].label(), "base/128x128/dac1/adc4/var0.1");
        assert_eq!(designs[0].label(), "base/128x128/dac1/adc4");
        // The noise axis is innermost: ids interleave specs per ADC width.
        assert!(designs[2].noise().is_ideal());
        assert_eq!(designs[2].adc_bits(), 8);
    }

    #[test]
    fn labels_distinguish_every_noise_source() {
        let specs = [
            NoiseSpec::new().with_read_noise(0.005),
            NoiseSpec::new().with_read_noise(0.02),
            NoiseSpec::new().with_adc_offset(0.25),
            NoiseSpec::new()
                .with_cell_variation(0.1)
                .with_read_noise(0.01),
        ];
        let designs = DesignSpace::new()
            .variant("base", base_macro().uncalibrated())
            .noise_specs(specs)
            .designs();
        let labels: Vec<String> = designs.iter().map(DesignPoint::label).collect();
        for (i, a) in labels.iter().enumerate() {
            for b in &labels[i + 1..] {
                assert_ne!(a, b, "noise specs must not collide in labels");
            }
        }
        assert_eq!(labels[0], "base/128x128/dac1/adc5/rn0.005");
        assert_eq!(labels[2], "base/128x128/dac1/adc5/off0.25");
        assert_eq!(labels[3], "base/128x128/dac1/adc5/var0.1/rn0.01");
    }

    #[test]
    fn section_axes_match_programmatic_axes() {
        let doc = cimloop_spec::ScenarioDoc::parse(
            "!Scenario\nname: s\n!Space\nsquare_arrays: [64, 128]\ndac_bits: [1, 2, 4]\n",
        )
        .unwrap();
        let from_spec = DesignSpace::new()
            .variant("base", base_macro().uncalibrated())
            .with_section(doc.section("Space").unwrap())
            .unwrap();
        let programmatic = space();
        let a = from_spec.designs();
        let b = programmatic.designs();
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.id(), y.id());
            assert_eq!(x.label(), y.label());
        }
    }

    #[test]
    fn section_variations_build_a_noise_axis() {
        let doc = cimloop_spec::ScenarioDoc::parse(
            "!Scenario\nname: s\n!Space\nvariations: [0.0, 0.1]\n",
        )
        .unwrap();
        let designs = DesignSpace::new()
            .variant("base", base_macro().uncalibrated())
            .with_section(doc.section("Space").unwrap())
            .unwrap()
            .designs();
        assert_eq!(designs.len(), 2);
        assert!(designs[0].noise().is_ideal());
        assert_eq!(designs[1].noise().cell_variation(), 0.1);
    }

    #[test]
    fn section_unknown_axis_is_an_error() {
        let doc = cimloop_spec::ScenarioDoc::parse(
            "!Scenario\nname: s\n!Space\nsquare_array: [64]\n", // sic
        )
        .unwrap();
        assert!(DesignSpace::new()
            .variant("base", base_macro().uncalibrated())
            .with_section(doc.section("Space").unwrap())
            .is_err());
    }

    #[test]
    fn dac_axis_swaps_converter_class() {
        let designs = space().designs();
        let h1 = designs[0].cim_macro().hierarchy().unwrap();
        assert_eq!(h1.component("dac").unwrap().class(), "pulse_driver");
        let h4 = designs[2].cim_macro().hierarchy().unwrap();
        assert_eq!(h4.component("dac").unwrap().class(), "capacitive_dac");
    }
}
