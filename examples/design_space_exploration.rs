//! Design-space exploration in the style of the paper's Fig 2: sweep CiM
//! array sizes and DAC resolutions on a real workload and find the
//! co-optimized design.
//!
//! Run with: `cargo run --release --example design_space_exploration`

use cimloop::macros::macro_c;
use cimloop::workload::models;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let net = models::resnet18();
    // Keep the example snappy: a representative slice of the network.
    let subset = cimloop::workload::Workload::new("resnet18_subset", net.layers()[4..10].to_vec())?;

    println!("array    DAC bits   energy/MAC (pJ)   TOPS/W");
    let mut best: Option<(u64, u32, f64)> = None;
    for &size in &[128u64, 256, 512] {
        for &dac_bits in &[1u32, 2, 4] {
            let m = macro_c()
                .with_array(size, size)
                .with_slicing(dac_bits, macro_c().cell_bits());
            let evaluator = m.evaluator()?;
            let report = evaluator.evaluate(&subset, &m.representation())?;
            let pj = report.energy_per_mac() * 1e12;
            println!(
                "{size:>4}x{size:<4}   {dac_bits:<8} {pj:>12.3}   {:>8.1}",
                report.tops_per_watt()
            );
            if best.map(|(_, _, e)| pj < e).unwrap_or(true) {
                best = Some((size, dac_bits, pj));
            }
        }
    }
    let (size, dac, pj) = best.expect("at least one config");
    println!("\nco-optimized design: {size}x{size} array, {dac}-bit DAC ({pj:.3} pJ/MAC)");
    println!("(the paper's Fig 2b: array size and DAC resolution must be chosen together)");
    Ok(())
}
