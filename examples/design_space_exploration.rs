//! Design-space exploration in the style of the paper's Fig 2: sweep CiM
//! array sizes and DAC resolutions on a real workload — at full-system
//! scope, where the co-design effect lives — and find the co-optimized
//! design through the `cimloop::dse` explorer.
//!
//! Run with: `cargo run --release --example design_space_exploration`

use cimloop::dse::{DesignSpace, EvalScope, Explorer};
use cimloop::macros::{macro_c, OutputCombine};
use cimloop::system::StorageScenario;
use cimloop::workload::models;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let net = models::resnet18();
    // Keep the example snappy: a representative slice of the network.
    let subset = cimloop::workload::Workload::new("resnet18_subset", net.layers()[4..10].to_vec())?;

    // The Fig 2 axes: array size × DAC resolution, over the ReRAM macro
    // with direct ADC readout, frozen at its published calibration.
    let space = DesignSpace::new()
        .variant(
            "c",
            macro_c().frozen()?.with_output_combine(OutputCombine::None),
        )
        .square_arrays([128, 256, 512])
        .dac_bits([1, 2, 4]);

    // System scope: macro-only sweeps mislead (Fig 2a) — the DRAM traffic
    // a larger array avoids is invisible without the system around it.
    let explorer = Explorer::new()
        .with_scope(EvalScope::System(StorageScenario::AllTensorsFromDram))
        .with_threads(1);

    // explore_with streams every report as it finishes (the front itself
    // retains only non-dominated designs); collect them for the table.
    let rows = std::sync::Mutex::new(Vec::new());
    let exploration = explorer.explore_with(&space, &subset, |report| {
        rows.lock().expect("rows poisoned").push((
            report.point.id(),
            report.point.rows(),
            report.point.dac_bits(),
            report.energy_per_mac * 1e12,
            report.tops_per_watt,
        ));
    })?;
    let mut rows = rows.into_inner().expect("rows poisoned");
    rows.sort_by_key(|&(id, ..)| id);

    println!("array    DAC bits   energy/MAC (pJ)   TOPS/W   on front");
    let mut best: Option<(u64, u32, f64)> = None;
    for &(_, size, dac_bits, pj, tops_w) in &rows {
        let on_front = exploration_contains(&exploration, size, dac_bits);
        println!(
            "{size:>4}x{size:<4}   {dac_bits:<8} {pj:>12.3}   {tops_w:>8.4}   {}",
            if on_front { "yes" } else { "-" }
        );
        if best.map(|(_, _, e)| pj < e).unwrap_or(true) {
            best = Some((size, dac_bits, pj));
        }
    }

    let (size, dac, pj) = best.expect("at least one config");
    println!("\ngrid optimum: {size}x{size} array, {dac}-bit DAC ({pj:.3} pJ/MAC)");
    println!("(the paper's Fig 2b: array size and DAC resolution must be chosen together)");

    // The Fig 2b conclusion, asserted as this reproduction establishes it
    // (see the fig02b experiment's PARTIAL verdict): the optimum lives at
    // the largest array — optimizing circuits alone, at the Fig 2a
    // macro-optimal 128×128 array, cannot reach it — and the paper's
    // co-optimized point (512×512, 1-bit DAC) ties the grid optimum
    // within 2% and sits on the Pareto front. In this DRAM-dominated
    // system the circuits axis is muted, so the architecture axis is what
    // must move with it.
    let pj_of = |r: u64, d: u32| {
        rows.iter()
            .find(|&&(_, size, dac_bits, ..)| size == r && dac_bits == d)
            .map(|&(_, _, _, pj, _)| pj)
            .expect("grid covers the corner")
    };
    assert_eq!(size, 512, "grid optimum should use the largest array");
    let co_opt = pj_of(512, 1);
    assert!(
        co_opt <= pj * 1.02,
        "the paper's co-optimized point should tie the grid optimum within 2%"
    );
    assert!(
        co_opt < pj_of(128, 1) && co_opt < pj_of(128, 4),
        "co-optimization must beat optimizing circuits alone at the macro-optimal array"
    );
    assert!(
        exploration_contains(&exploration, 512, 1),
        "the co-optimized design must be Pareto-optimal"
    );
    println!(
        "verified: co-optimized point matches Fig 2b (front holds {} of {} designs)",
        exploration.front.len(),
        exploration.evaluated
    );
    Ok(())
}

fn exploration_contains(exploration: &cimloop::dse::Exploration, rows: u64, dac_bits: u32) -> bool {
    exploration
        .front
        .members()
        .iter()
        .any(|m| m.value.point.rows() == rows && m.value.point.dac_bits() == dac_bits)
}
