//! Quickstart: model a CiM macro, run a DNN layer, and read the energy,
//! throughput, and per-component breakdown.
//!
//! Run with: `cargo run --release --example quickstart`

use cimloop::core::{Encoding, Evaluator, Representation};
use cimloop::spec::Hierarchy;
use cimloop::workload::models;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Describe a CiM macro with the container-hierarchy text format
    //    (paper Fig 5b): edge staging registers, DACs, 64x64 array columns
    //    with ADCs. (Large SRAM buffers belong to the system level — see
    //    the `full_system` example; billing a big SRAM per bit-slice read
    //    would swamp the macro energy.)
    let spec = "
!Component
name: buffer
class: regfile
entries: 256
width: 16
temporal_reuse: [Inputs, Outputs]
!Container
name: macro
!Component
name: accumulator
class: shift_add
bits: 24
temporal_reuse: [Outputs]
temporal_dims: Is
!Component
name: dac
class: dac
resolution: 1
no_coalesce: [Inputs]
!Container
name: column
spatial: { meshX: 64 }
spatial_reuse: [Inputs]
spatial_dims: K, Ws
!Component
name: adc
class: sar_adc
resolution: 8
no_coalesce: [Outputs]
!Component
name: cell
class: sram_cim_cell
spatial: { meshY: 64 }
temporal_reuse: [Weights]
spatial_reuse: [Outputs]
spatial_dims: C, R, S
slice_storage: true
";
    let hierarchy = Hierarchy::from_yamlite(spec)?;

    // 2. Build the evaluator (resolves each component class to an
    //    area/energy model from the plug-in library).
    let evaluator = Evaluator::new(hierarchy)?;

    // 3. Pick a workload layer and a data representation: bit-serial
    //    inputs, offset-encoded signed weights in 4-bit cells.
    let net = models::resnet18();
    let layer = &net.layers()[5];
    let rep = Representation::new(Encoding::TwosComplement, Encoding::Offset, 1, 4)?;

    // 4. Evaluate: maps the layer, runs the data-value-dependent pipeline,
    //    and combines per-action energies with dataflow action counts.
    let report = evaluator.evaluate_layer(layer, &rep)?;

    println!("layer {}  ({} MACs)", report.layer_name(), report.macs());
    println!("  energy      : {:.3} uJ", report.energy_total() * 1e6);
    println!("  energy/MAC  : {:.2} fJ", report.energy_per_mac() * 1e15);
    println!("  throughput  : {:.1} GOPS", report.gops());
    println!("  efficiency  : {:.1} TOPS/W", report.tops_per_watt());
    println!(
        "  utilization : {:.1}%",
        report.spatial_utilization() * 100.0
    );
    println!("  breakdown:");
    for c in report.components() {
        println!(
            "    {:<12} {:>8.3} uJ  ({:>4.1}%)",
            c.name,
            c.total_energy() * 1e6,
            100.0 * c.total_energy() / report.energy_total()
        );
    }
    Ok(())
}
