//! Put a macro into a full system (DRAM + global buffer + NoC) and compare
//! the storage scenarios of the paper's Fig 15.
//!
//! Run with: `cargo run --release --example full_system`

use cimloop::macros::macro_d;
use cimloop::system::{CimSystem, StorageScenario};
use cimloop::workload::models;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let net = models::resnet18();
    let subset = cimloop::workload::Workload::new("resnet18_subset", net.layers()[4..10].to_vec())?;

    println!("Macro D in a full system, ResNet18 subset:");
    println!(
        "{:<48} {:>10} {:>10} {:>10} {:>10}",
        "scenario", "on-chip", "buffer", "DRAM", "pJ/MAC"
    );
    for scenario in StorageScenario::ALL {
        let system = CimSystem::new(macro_d()).with_scenario(scenario);
        let evaluator = system.evaluator()?;
        let report = evaluator.evaluate(&subset, &system.representation())?;
        let macs = report.macs_total() as f64;
        let mut on_chip = 0.0;
        let mut glb = 0.0;
        let mut dram = 0.0;
        for (count, layer_report) in report.layers() {
            let (o, g, d) = CimSystem::fig15_breakdown(layer_report);
            on_chip += *count as f64 * o;
            glb += *count as f64 * g;
            dram += *count as f64 * d;
        }
        let pj = |e: f64| e / macs * 1e12;
        println!(
            "{:<48} {:>10.3} {:>10.3} {:>10.3} {:>10.3}",
            scenario.to_string(),
            pj(on_chip),
            pj(glb),
            pj(dram),
            pj(on_chip + glb + dram)
        );
    }
    println!("\nweight-stationary operation removes DRAM weight traffic; keeping");
    println!("inputs/outputs on-chip (layer fusion) removes the rest.");
    Ok(())
}
