//! The statistical non-ideality subsystem: how cell programming
//! variation, column read noise, and ADC offset/quantization error turn
//! into an expected-output-SNR accuracy metric — and how a design sweep
//! trades that accuracy against energy with the DSE noise axis.
//!
//! Run with: `cargo run --release --example noise_model`

use cimloop::dse::{DesignSpace, Explorer, NoiseSpec};
use cimloop::macros::base_macro;
use cimloop::workload::models;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 256x256 ReRAM macro with realistic NVM non-idealities: 8%
    // programming variation, read noise at 0.2% of the column full
    // scale, ADC offset of a quarter LSB.
    let noise = NoiseSpec::new()
        .with_cell_variation(0.08)
        .with_read_noise(0.002)
        .with_adc_offset(0.25);
    let m = base_macro()
        .uncalibrated()
        .with_array(256, 256)
        .with_adc_bits(8)
        .with_noise(noise);

    let evaluator = m.evaluator()?;
    let layer = models::mvm(m.rows(), m.cols()).layers()[0].clone();
    let report = evaluator.evaluate_layer(&layer, &m.representation())?;
    let accuracy = report.noise().expect("analog readout carries a report");
    println!("single-macro evaluation (8b ADC, noisy cells):");
    println!("  energy/MAC : {:.3} pJ", report.energy_per_mac() * 1e12);
    println!("  output SNR : {:.1} dB", accuracy.snr_db);
    println!("  ENOB       : {:.2} bits", accuracy.enob);
    println!(
        "  error RMS  : {:.3} (column-sum units)",
        accuracy.error_rms
    );

    // The same macro with ideal devices: the SNR gap is what variation
    // costs; the energy is identical (noise is an accuracy model).
    let ideal = m.clone().with_noise(NoiseSpec::ideal());
    let ideal_report = ideal
        .evaluator()?
        .evaluate_layer(&layer, &ideal.representation())?;
    let ideal_accuracy = ideal_report.noise().expect("analog readout");
    assert_eq!(report.energy_total(), ideal_report.energy_total());
    assert!(accuracy.snr_db < ideal_accuracy.snr_db);
    println!(
        "\nideal devices reach {:.1} dB -> variation costs {:.1} dB",
        ideal_accuracy.snr_db,
        ideal_accuracy.snr_db - accuracy.snr_db
    );

    // Variation-tolerance sweep: ADC resolution x noise level, scored on
    // the noise-derived SNR objective (the explorer default). The front
    // exposes the trade: cheaper converters only stay Pareto-optimal
    // while the noise floor, not the quantizer, limits accuracy.
    let space = DesignSpace::new()
        .variant("reram", base_macro().uncalibrated().with_array(256, 256))
        .adc_bits([4, 6, 8, 10])
        .noise_specs([
            NoiseSpec::ideal(),
            NoiseSpec::new().with_cell_variation(0.08),
            NoiseSpec::new().with_cell_variation(0.20),
        ]);
    let net = models::mvm(256, 256);
    let exploration = Explorer::new().with_threads(1).explore(&space, &net)?;
    println!(
        "\nvariation-tolerance sweep: {} designs, {} Pareto-optimal",
        exploration.evaluated,
        exploration.front.len()
    );
    println!("{:<32} {:>12} {:>10}", "design", "energy/MAC", "SNR (dB)");
    for member in exploration.front.members() {
        let r = &member.value;
        println!(
            "{:<32} {:>9.3} pJ {:>10.1}",
            r.point.label(),
            r.energy_per_mac * 1e12,
            r.output_snr_db.unwrap_or(f64::INFINITY)
        );
    }

    // With zero noise the subsystem is an exact identity: asserted here
    // so the example doubles as a smoke test of the golden guarantee.
    let zeroed = m
        .clone()
        .with_noise(NoiseSpec::new().with_cell_variation(0.0));
    let zero_report = zeroed
        .evaluator()?
        .evaluate_layer(&layer, &zeroed.representation())?;
    assert_eq!(zero_report, ideal_report);
    println!("\nzero-sigma spec verified bit-identical to the ideal path");
    Ok(())
}
