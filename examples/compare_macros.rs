//! Fairly compare published CiM macros on the same workloads (the paper's
//! cross-macro case study, Fig 16): evaluate every built-in macro on
//! ResNet18 and a transformer block at matched precisions.
//!
//! Run with: `cargo run --release --example compare_macros`

use cimloop::macros::{base_macro, digital_cim, macro_a, macro_b, macro_c, macro_d};
use cimloop::workload::models;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let resnet = models::resnet18();
    let cnn_layer = resnet.layers()[6]
        .clone()
        .with_input_bits(4)
        .with_weight_bits(4);
    let gpt2 = models::gpt2_small();
    let llm_layer = gpt2.layers()[0]
        .clone()
        .with_input_bits(4)
        .with_weight_bits(4);

    println!(
        "{:<12} {:>8} {:>12} {:>12} {:>12} {:>12}",
        "macro", "node", "CNN TOPS/W", "CNN GOPS", "LLM TOPS/W", "LLM GOPS"
    );
    for m in [
        base_macro(),
        macro_a(),
        macro_b(),
        macro_c(),
        macro_d(),
        digital_cim(),
    ] {
        let evaluator = m.evaluator()?;
        let rep = m.representation();
        let cnn = evaluator.evaluate_layer(&cnn_layer, &rep)?;
        let llm = evaluator.evaluate_layer(&llm_layer, &rep)?;
        println!(
            "{:<12} {:>6}nm {:>12.1} {:>12.1} {:>12.1} {:>12.1}",
            m.name(),
            m.node_nm(),
            cnn.tops_per_watt(),
            cnn.gops(),
            llm.tops_per_watt(),
            llm.gops()
        );
    }
    println!("\nnumbers are calibrated to each publication's headline operating point;");
    println!("cross-macro rankings depend on workload shape and operand precision.");
    Ok(())
}
