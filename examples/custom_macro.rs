//! Define a *custom* CiM macro — a ReRAM array with differential weight
//! encoding and a value-aware ADC — entirely through the public API, then
//! compare encodings. Shows the flexibility contribution of the paper: new
//! circuits and data-movement patterns without touching tool internals.
//!
//! Run with: `cargo run --release --example custom_macro`

use cimloop::core::{Encoding, Evaluator, Representation};
use cimloop::spec::{Component, Container, Hierarchy, Reuse, Spatial, Tensor};
use cimloop::workload::models;

fn build(value_aware_adc: bool) -> Result<Evaluator, Box<dyn std::error::Error>> {
    let hierarchy = Hierarchy::builder()
        .component(
            Component::new("buffer")
                .with_class("sram_buffer")
                .with_attr("entries", 32768i64)
                .with_attr("technology", 22.0)
                .with_reuse(Tensor::Inputs, Reuse::Temporal)
                .with_reuse(Tensor::Outputs, Reuse::Temporal),
        )
        .container(Container::new("macro"))
        .component(
            Component::new("accumulator")
                .with_class("shift_add")
                .with_attr("bits", 24i64)
                .with_attr("technology", 22.0)
                .with_attr("temporal_dims", "Is")
                .with_reuse(Tensor::Outputs, Reuse::Temporal),
        )
        .component(
            Component::new("dac")
                .with_class("pulse_driver")
                .with_attr("cols", 128i64)
                .with_attr("technology", 22.0)
                .with_reuse(Tensor::Inputs, Reuse::NoCoalesce),
        )
        .container(
            Container::new("column")
                .with_spatial(Spatial::new(128, 1))
                .with_spatial_reuse(Tensor::Inputs)
                .with_attr("spatial_dims", "K, Ws"),
        )
        .component(
            Component::new("adc")
                .with_class("sar_adc")
                .with_attr("resolution", 8i64)
                .with_attr("technology", 22.0)
                .with_attr("value_aware", value_aware_adc)
                .with_reuse(Tensor::Outputs, Reuse::NoCoalesce),
        )
        .component(
            Component::new("cell")
                .with_class("reram_cim_cell")
                .with_attr("slice_storage", true)
                .with_spatial(Spatial::new(1, 128))
                .with_reuse(Tensor::Weights, Reuse::Temporal)
                .with_spatial_reuse(Tensor::Outputs)
                .with_attr("spatial_dims", "C, R, S"),
        )
        .build()?;
    Ok(Evaluator::new(hierarchy)?)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let net = models::resnet18();
    let layer = &net.layers()[8];

    println!(
        "custom 128x128 ReRAM macro at 22nm, layer {}:",
        layer.name()
    );
    println!("{:<46} {:>12} {:>10}", "configuration", "fJ/MAC", "TOPS/W");
    for (enc_name, weight_encoding) in [
        ("offset-encoded weights", Encoding::Offset),
        (
            "differential weights (RAELLA-style)",
            Encoding::Differential,
        ),
    ] {
        for value_aware in [false, true] {
            let evaluator = build(value_aware)?;
            let rep = Representation::new(Encoding::TwosComplement, weight_encoding, 1, 4)?;
            let report = evaluator.evaluate_layer(layer, &rep)?;
            println!(
                "{:<46} {:>12.2} {:>10.1}",
                format!(
                    "{enc_name}{}",
                    if value_aware {
                        " + value-aware ADC"
                    } else {
                        ""
                    }
                ),
                report.energy_per_mac() * 1e15,
                report.tops_per_watt()
            );
        }
    }
    println!("\nthe tradeoff CiMLoop exposes: differential encoding keeps near-zero");
    println!("weights at low conductance (cheap cell reads) but doubles the weight");
    println!("devices, so column/ADC events double — whether it wins depends on how");
    println!("much of the macro's energy the ADC carries. The value-aware ADC");
    println!("recovers part of the cost by converting small column sums cheaply.");
    Ok(())
}
